//! City generation: a clustered spatial process that places AOIs into
//! districts, mirroring how real AOIs (compounds, malls, office towers)
//! agglomerate along a road network.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::types::{Aoi, AoiType, Courier, Point};

/// Parameters of the synthetic city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityConfig {
    /// RNG seed.
    pub seed: u64,
    /// Side length of the square city extent, km.
    pub extent_km: f32,
    /// Number of districts (cluster centres) AOIs agglomerate around.
    pub n_districts: usize,
    /// Total number of AOIs.
    pub n_aois: usize,
    /// Standard deviation of AOI scatter around a district centre, km.
    pub district_sigma_km: f32,
    /// AOI radius range, km.
    pub aoi_radius_km: (f32, f32),
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            extent_km: 12.0,
            n_districts: 12,
            n_aois: 320,
            district_sigma_km: 0.9,
            aoi_radius_km: (0.06, 0.22),
        }
    }
}

/// The generated city: a set of AOIs on a planar extent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// All AOIs, indexed by `Aoi::id`.
    pub aois: Vec<Aoi>,
    /// Side length of the square extent, km.
    pub extent_km: f32,
}

impl City {
    /// Generates a city from the config (deterministic in the seed).
    pub fn generate(config: &CityConfig) -> Self {
        assert!(config.n_aois >= 1, "city needs at least one AOI");
        assert!(config.n_districts >= 1, "city needs at least one district");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let centres: Vec<Point> = (0..config.n_districts)
            .map(|_| Point {
                x: rng.gen_range(0.0..config.extent_km),
                y: rng.gen_range(0.0..config.extent_km),
            })
            .collect();
        // District character biases which AOI types appear there
        // (business districts are office-heavy, suburbs residential).
        let district_type_bias: Vec<[f32; 6]> = (0..config.n_districts)
            .map(|_| {
                let mut w = [1.0f32; 6];
                // boost one or two types per district
                let boosted = rng.gen_range(0..6);
                w[boosted] += 3.0;
                if rng.gen_bool(0.5) {
                    w[rng.gen_range(0..6)] += 1.5;
                }
                w
            })
            .collect();
        let aois = (0..config.n_aois)
            .map(|id| {
                let d = rng.gen_range(0..config.n_districts);
                let centre = centres[d];
                let gauss = |rng: &mut StdRng| {
                    // Box-Muller
                    let u1: f32 = rng.gen_range(1e-6..1.0f32);
                    let u2: f32 = rng.gen_range(0.0..1.0f32);
                    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
                };
                let x = (centre.x + gauss(&mut rng) * config.district_sigma_km)
                    .clamp(0.0, config.extent_km);
                let y = (centre.y + gauss(&mut rng) * config.district_sigma_km)
                    .clamp(0.0, config.extent_km);
                let kind = sample_weighted(&mut rng, &district_type_bias[d]);
                let radius = rng.gen_range(config.aoi_radius_km.0..config.aoi_radius_km.1);
                Aoi { id, kind, center: Point { x, y }, radius }
            })
            .collect();
        Self { aois, extent_km: config.extent_km }
    }

    /// Generates a fleet of couriers, each owning a territory of the
    /// `territory_size` AOIs nearest to a random anchor point. Stable
    /// territories make the habit pattern learnable across days.
    pub fn generate_couriers(&self, n: usize, territory_size: usize, seed: u64) -> Vec<Courier> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
        let territory_size = territory_size.min(self.aois.len());
        (0..n)
            .map(|id| {
                let anchor = Point {
                    x: rng.gen_range(0.0..self.extent_km),
                    y: rng.gen_range(0.0..self.extent_km),
                };
                let mut by_dist: Vec<usize> = (0..self.aois.len()).collect();
                by_dist.sort_by(|&a, &b| {
                    self.aois[a]
                        .center
                        .dist(&anchor)
                        .partial_cmp(&self.aois[b].center.dist(&anchor))
                        .expect("finite distances")
                });
                by_dist.truncate(territory_size);
                Courier {
                    id,
                    speed_kmh: rng.gen_range(9.0..16.0),
                    work_hours: rng.gen_range(6.0..10.0),
                    attendance: rng.gen_range(0.82..1.0),
                    territory: by_dist,
                    habit_seed: rng.gen(),
                }
            })
            .collect()
    }

    /// Looks up an AOI by id.
    pub fn aoi(&self, id: usize) -> &Aoi {
        &self.aois[id]
    }
}

fn sample_weighted(rng: &mut StdRng, weights: &[f32; 6]) -> AoiType {
    let total: f32 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return AoiType::ALL[i];
        }
        u -= w;
    }
    AoiType::ALL[5]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_generation_is_deterministic() {
        let cfg = CityConfig::default();
        let a = City::generate(&cfg);
        let b = City::generate(&cfg);
        assert_eq!(a.aois.len(), b.aois.len());
        for (x, y) in a.aois.iter().zip(&b.aois) {
            assert_eq!(x.center, y.center);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn aois_lie_within_extent_with_sane_radii() {
        let cfg = CityConfig::default();
        let city = City::generate(&cfg);
        assert_eq!(city.aois.len(), cfg.n_aois);
        for a in &city.aois {
            assert!(a.center.x >= 0.0 && a.center.x <= cfg.extent_km);
            assert!(a.center.y >= 0.0 && a.center.y <= cfg.extent_km);
            assert!(a.radius >= cfg.aoi_radius_km.0 && a.radius <= cfg.aoi_radius_km.1);
        }
    }

    #[test]
    fn aois_are_clustered_not_uniform() {
        // Mean nearest-neighbour distance of a clustered process must be
        // well below the uniform-Poisson expectation 0.5/sqrt(density).
        let cfg = CityConfig::default();
        let city = City::generate(&cfg);
        let nn_mean: f32 = city
            .aois
            .iter()
            .map(|a| {
                city.aois
                    .iter()
                    .filter(|b| b.id != a.id)
                    .map(|b| a.center.dist(&b.center))
                    .fold(f32::MAX, f32::min)
            })
            .sum::<f32>()
            / city.aois.len() as f32;
        let density = cfg.n_aois as f32 / (cfg.extent_km * cfg.extent_km);
        let poisson_expectation = 0.5 / density.sqrt();
        assert!(
            nn_mean < 0.8 * poisson_expectation,
            "AOIs look uniform: nn_mean={nn_mean}, poisson={poisson_expectation}"
        );
    }

    #[test]
    fn courier_territories_are_contiguous_and_sized() {
        let city = City::generate(&CityConfig::default());
        let couriers = city.generate_couriers(10, 24, 1);
        assert_eq!(couriers.len(), 10);
        for c in &couriers {
            assert_eq!(c.territory.len(), 24);
            // territory AOIs must be mutually close: max pairwise distance
            // bounded by a fraction of the extent.
            let mut max_d = 0.0f32;
            for &a in &c.territory {
                for &b in &c.territory {
                    max_d = max_d.max(city.aoi(a).center.dist(&city.aoi(b).center));
                }
            }
            assert!(max_d < city.extent_km, "territory too spread: {max_d}");
            assert!(c.speed_kmh >= 9.0 && c.speed_kmh < 16.0);
            assert!(c.attendance > 0.8 && c.attendance <= 1.0);
        }
    }
}
