//! Courier behaviour simulation: turns an [`RtpQuery`] into the
//! ground-truth route and arrival times that real logs would record.
//!
//! The generative process realises the paper's three motivating
//! observations (§I): couriers serve AOIs as blocks, AOI order follows a
//! courier-specific *habit* blended with distance and deadline pressure,
//! and times are the physical consequence of the chosen route.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::city::City;
use crate::types::{Courier, GroundTruth, Point, RtpQuery};

/// Tunable parameters of the simulated decision process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BehaviorConfig {
    /// Weight of the courier's habit score when choosing the next AOI.
    pub habit_weight: f32,
    /// Penalty per km of distance to an AOI centre.
    pub distance_weight: f32,
    /// Bonus for deadline urgency (scaled slack).
    pub urgency_weight: f32,
    /// Gumbel noise scale on AOI choice (0 = fully deterministic).
    pub decision_noise: f32,
    /// Probability of picking the nearest remaining location inside an
    /// AOI (otherwise a random remaining one).
    pub nn_prob: f64,
    /// Probability, after each served location, of leaving an AOI before
    /// finishing it (produces the rare block-breaking the paper's
    /// transfer statistics imply).
    pub block_break_prob: f64,
    /// Multiplicative noise sigma on service times (lognormal-ish).
    pub service_noise: f32,
    /// Multiplicative noise sigma on travel times (congestion).
    pub congestion_noise: f32,
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        Self {
            habit_weight: 3.0,
            distance_weight: 1.1,
            urgency_weight: 0.8,
            decision_noise: 0.35,
            nn_prob: 0.85,
            block_break_prob: 0.04,
            service_noise: 0.25,
            congestion_noise: 0.18,
        }
    }
}

/// Simulates courier behaviour against a fixed city.
#[derive(Debug, Clone)]
pub struct BehaviorSim<'a> {
    city: &'a City,
    config: BehaviorConfig,
}

impl<'a> BehaviorSim<'a> {
    /// Creates a simulator over `city` with the given behaviour knobs.
    pub fn new(city: &'a City, config: BehaviorConfig) -> Self {
        Self { city, config }
    }

    /// The behaviour configuration in use.
    pub fn config(&self) -> &BehaviorConfig {
        &self.config
    }

    /// Simulates the ground-truth route and arrival times for `query`.
    ///
    /// # Panics
    /// Panics if the query has no orders.
    pub fn simulate(&self, query: &RtpQuery, courier: &Courier, rng: &mut StdRng) -> GroundTruth {
        assert!(!query.orders.is_empty(), "cannot simulate an empty query");
        let cfg = &self.config;
        let n = query.orders.len();
        let aois = query.distinct_aois();
        let order_aoi = query.order_aoi_indices();

        let mut remaining: Vec<Vec<usize>> = vec![Vec::new(); aois.len()];
        for (i, &a) in order_aoi.iter().enumerate() {
            remaining[a].push(i);
        }

        let speed_kmh = courier.speed_kmh * query.weather.speed_factor();
        let min_per_km = 60.0 / speed_kmh;

        let mut pos = query.courier_pos;
        let mut clock = 0.0f32; // minutes since query.time
        let mut route = Vec::with_capacity(n);
        let mut arrival = vec![0.0f32; n];
        let mut aoi_route: Vec<usize> = Vec::new();
        let mut aoi_arrival = vec![f32::NAN; aois.len()];
        let mut left = n;

        while left > 0 {
            let a = self.pick_aoi(query, courier, &aois, &remaining, &pos, clock, rng);
            // Serve locations in AOI `a` until it is empty or the courier
            // (rarely) breaks the block.
            loop {
                let locs = &mut remaining[a];
                if locs.is_empty() {
                    break;
                }
                let pick = if rng.gen_bool(cfg.nn_prob) {
                    // nearest remaining in this AOI
                    let (k, _) = locs
                        .iter()
                        .enumerate()
                        .map(|(k, &i)| (k, query.orders[i].pos.dist(&pos)))
                        .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
                        .expect("non-empty");
                    k
                } else {
                    rng.gen_range(0..locs.len())
                };
                let i = locs.swap_remove(pick);
                let order = &query.orders[i];
                let travel =
                    order.pos.dist(&pos) * min_per_km * noise_factor(rng, cfg.congestion_noise);
                clock += travel;
                arrival[i] = clock;
                if aoi_arrival[a].is_nan() {
                    aoi_arrival[a] = clock;
                    aoi_route.push(a);
                }
                let base = self.city.aoi(query.orders[i].aoi_id).kind.base_service_min();
                clock += base * noise_factor(rng, cfg.service_noise);
                pos = order.pos;
                route.push(i);
                left -= 1;

                let others_left =
                    remaining.iter().enumerate().any(|(k, v)| k != a && !v.is_empty());
                if others_left && !remaining[a].is_empty() && rng.gen_bool(cfg.block_break_prob) {
                    break; // block-breaking: leave before finishing
                }
            }
        }
        debug_assert!(aoi_arrival.iter().all(|t| !t.is_nan()));
        GroundTruth { route, arrival, aoi_route, aoi_arrival }
    }

    /// Scores candidate AOIs and picks the next one (argmax of
    /// habit − distance − slack + Gumbel noise). Only AOIs with remaining
    /// locations are candidates.
    #[allow(clippy::too_many_arguments)] // internal scorer; grouping adds indirection only
    fn pick_aoi(
        &self,
        query: &RtpQuery,
        courier: &Courier,
        aois: &[usize],
        remaining: &[Vec<usize>],
        pos: &Point,
        clock: f32,
        rng: &mut StdRng,
    ) -> usize {
        let cfg = &self.config;
        let mut best = usize::MAX;
        let mut best_score = f32::NEG_INFINITY;
        for (k, aoi_id) in aois.iter().enumerate() {
            if remaining[k].is_empty() {
                continue;
            }
            let aoi = self.city.aoi(*aoi_id);
            let habit = courier.habit_score(*aoi_id);
            let dist = aoi.center.dist(pos);
            // earliest remaining deadline in the AOI, as slack from "now"
            let slack = remaining[k]
                .iter()
                .map(|&i| query.orders[i].deadline - query.time - clock)
                .fold(f32::MAX, f32::min);
            let urgency = 1.0 - (slack / 120.0).clamp(0.0, 1.0);
            let noise = gumbel(rng) * cfg.decision_noise;
            let score = cfg.habit_weight * habit - cfg.distance_weight * dist
                + cfg.urgency_weight * urgency
                + noise;
            if score > best_score {
                best_score = score;
                best = k;
            }
        }
        assert_ne!(best, usize::MAX, "pick_aoi called with nothing remaining");
        best
    }
}

/// Multiplicative noise centred at 1: exp(sigma * N(0,1)), clamped to
/// avoid pathological draws.
fn noise_factor(rng: &mut StdRng, sigma: f32) -> f32 {
    let u1: f32 = rng.gen_range(1e-6..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    (sigma * z).exp().clamp(0.4, 2.5)
}

/// Standard Gumbel noise (argmax with Gumbel = sampling from a softmax).
fn gumbel(rng: &mut StdRng) -> f32 {
    let u: f32 = rng.gen_range(1e-6..1.0f32);
    -(-u.ln()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{City, CityConfig};
    use crate::types::{Order, Weather};
    use rand::SeedableRng;

    fn setup() -> (City, Vec<Courier>) {
        let city = City::generate(&CityConfig { n_aois: 40, ..CityConfig::default() });
        let couriers = city.generate_couriers(4, 12, 99);
        (city, couriers)
    }

    fn mk_query(city: &City, courier: &Courier, n_per_aoi: &[usize], rng: &mut StdRng) -> RtpQuery {
        let mut orders = Vec::new();
        for (k, &cnt) in n_per_aoi.iter().enumerate() {
            let aoi = city.aoi(courier.territory[k]);
            for _ in 0..cnt {
                let dx = rng.gen_range(-aoi.radius..aoi.radius);
                let dy = rng.gen_range(-aoi.radius..aoi.radius);
                orders.push(Order {
                    pos: Point { x: aoi.center.x + dx, y: aoi.center.y + dy },
                    aoi_id: aoi.id,
                    deadline: 600.0 + rng.gen_range(30.0..180.0),
                    accept_time: 540.0,
                });
            }
        }
        RtpQuery {
            courier_id: courier.id,
            time: 600.0,
            courier_pos: city.aoi(courier.territory[0]).center,
            orders,
            weather: Weather::Sunny,
            weekday: 2,
        }
    }

    #[test]
    fn route_is_a_permutation_and_times_follow_route() {
        let (city, couriers) = setup();
        let sim = BehaviorSim::new(&city, BehaviorConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let q = mk_query(&city, &couriers[0], &[3, 2, 2], &mut rng);
        let t = sim.simulate(&q, &couriers[0], &mut rng);
        // permutation
        let mut seen = vec![false; q.orders.len()];
        for &i in &t.route {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // arrival times strictly increase along the route
        for w in t.route.windows(2) {
            assert!(t.arrival[w[1]] > t.arrival[w[0]], "times must increase along route");
        }
        // AOI arrival equals first-location arrival in that AOI (Def. 5)
        let order_aoi = q.order_aoi_indices();
        for (j, &a) in t.aoi_route.iter().enumerate() {
            let first =
                t.route.iter().find(|&&i| order_aoi[i] == a).copied().expect("AOI has locations");
            assert_eq!(t.aoi_arrival[a], t.arrival[first], "AOI {j} arrival mismatch");
        }
    }

    #[test]
    fn blocks_are_mostly_contiguous() {
        // With default block_break_prob, the number of AOI switches along
        // the route should be close to the number of distinct AOIs.
        let (city, couriers) = setup();
        let sim = BehaviorSim::new(&city, BehaviorConfig::default());
        let mut rng = StdRng::seed_from_u64(17);
        let mut switches = 0usize;
        let mut aoi_count = 0usize;
        for rep in 0..50 {
            let c = &couriers[rep % couriers.len()];
            let q = mk_query(&city, c, &[3, 3, 2, 2], &mut rng);
            let t = sim.simulate(&q, c, &mut rng);
            let order_aoi = q.order_aoi_indices();
            for w in t.route.windows(2) {
                if order_aoi[w[0]] != order_aoi[w[1]] {
                    switches += 1;
                }
            }
            aoi_count += q.distinct_aois().len() - 1;
        }
        let ratio = switches as f32 / aoi_count as f32;
        assert!(
            (1.0..1.5).contains(&ratio),
            "AOI transfers per route should be near m-1 (block structure), got ratio {ratio}"
        );
    }

    #[test]
    fn habit_dominates_aoi_order_when_noise_is_zero() {
        let (city, couriers) = setup();
        let cfg = BehaviorConfig {
            habit_weight: 100.0,
            distance_weight: 0.0,
            urgency_weight: 0.0,
            decision_noise: 0.0,
            block_break_prob: 0.0,
            ..BehaviorConfig::default()
        };
        let sim = BehaviorSim::new(&city, cfg);
        let c = &couriers[1];
        let mut rng = StdRng::seed_from_u64(3);
        let q = mk_query(&city, c, &[2, 2, 2], &mut rng);
        let t = sim.simulate(&q, c, &mut rng);
        let aois = q.distinct_aois();
        // visited strictly by descending habit score
        let scores: Vec<f32> = t.aoi_route.iter().map(|&k| c.habit_score(aois[k])).collect();
        for w in scores.windows(2) {
            assert!(w[0] > w[1], "habit order violated: {scores:?}");
        }
    }

    #[test]
    fn storm_weather_slows_arrivals() {
        let (city, couriers) = setup();
        let cfg = BehaviorConfig {
            decision_noise: 0.0,
            congestion_noise: 0.0,
            service_noise: 0.0,
            ..Default::default()
        };
        let sim = BehaviorSim::new(&city, cfg);
        let c = &couriers[2];
        let mut rng = StdRng::seed_from_u64(11);
        let q_sunny = mk_query(&city, c, &[3, 3], &mut rng);
        let mut q_storm = q_sunny.clone();
        q_storm.weather = Weather::Storm;
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let t_sunny = sim.simulate(&q_sunny, c, &mut r1);
        let t_storm = sim.simulate(&q_storm, c, &mut r2);
        let last_sunny = t_sunny.arrival.iter().cloned().fold(0.0f32, f32::max);
        let last_storm = t_storm.arrival.iter().cloned().fold(0.0f32, f32::max);
        assert!(last_storm > last_sunny, "storm must delay the route end");
    }
}
