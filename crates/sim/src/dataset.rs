//! Dataset generation: turns the city + courier fleet + behaviour
//! simulator into chronologically split train/validation/test samples,
//! following the protocol of paper §V.A (65/17/10-day chronological
//! split, routes filtered to ≤ 20 locations and ≤ 10 AOIs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::behavior::{BehaviorConfig, BehaviorSim};
use crate::city::{City, CityConfig};
use crate::types::{splitmix64, Courier, Order, Point, RtpQuery, RtpSample, Weather};

/// Number of days per split, mirroring the paper's 65/17/10.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SplitSizes {
    /// Training days.
    pub train_days: usize,
    /// Validation days.
    pub val_days: usize,
    /// Test days.
    pub test_days: usize,
}

impl SplitSizes {
    /// Total days simulated.
    pub fn total(&self) -> usize {
        self.train_days + self.val_days + self.test_days
    }
}

/// Full configuration of dataset generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Master seed; every sample derives a private stream from it.
    pub seed: u64,
    /// City layout parameters.
    pub city: CityConfig,
    /// Behaviour simulation knobs.
    pub behavior: BehaviorConfig,
    /// Fleet size.
    pub n_couriers: usize,
    /// AOIs per courier territory.
    pub territory_size: usize,
    /// Chronological split (paper: 65/17/10).
    pub split: SplitSizes,
    /// RTP queries sampled per courier per day.
    pub samples_per_courier_day: usize,
    /// Inclusive range of locations per sample (paper keeps n ≤ 20).
    pub locations_range: (usize, usize),
    /// Maximum distinct AOIs per sample (paper keeps m ≤ 10).
    pub max_aois: usize,
    /// Mean number of AOIs per sample (paper: 4.08) — drives sampling.
    pub mean_aois: f32,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            seed: 2023,
            city: CityConfig::default(),
            behavior: BehaviorConfig::default(),
            n_couriers: 48,
            territory_size: 24,
            split: SplitSizes { train_days: 65, val_days: 17, test_days: 10 },
            samples_per_courier_day: 2,
            locations_range: (4, 20),
            max_aois: 10,
            mean_aois: 4.1,
        }
    }
}

impl DatasetConfig {
    /// A laptop-second-scale config for tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            city: CityConfig { n_aois: 60, n_districts: 5, ..CityConfig::default() },
            n_couriers: 6,
            territory_size: 12,
            split: SplitSizes { train_days: 6, val_days: 2, test_days: 2 },
            samples_per_courier_day: 2,
            ..Self::default()
        }
    }

    /// A CI-scale config: trains real models in seconds-to-minutes.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            city: CityConfig { n_aois: 100, n_districts: 8, ..CityConfig::default() },
            n_couriers: 16,
            territory_size: 16,
            split: SplitSizes { train_days: 20, val_days: 5, test_days: 5 },
            samples_per_courier_day: 2,
            ..Self::default()
        }
    }
}

/// The generated dataset: city, fleet and chronological splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// The city the samples live in.
    pub city: City,
    /// The courier fleet, indexed by `Courier::id`.
    pub couriers: Vec<Courier>,
    /// Training samples (first `train_days` days).
    pub train: Vec<RtpSample>,
    /// Validation samples.
    pub val: Vec<RtpSample>,
    /// Test samples (last days).
    pub test: Vec<RtpSample>,
    /// The generating configuration (kept for provenance).
    pub config: DatasetConfig,
}

impl Dataset {
    /// All samples of every split, in train→val→test order.
    pub fn all_samples(&self) -> impl Iterator<Item = &RtpSample> {
        self.train.iter().chain(self.val.iter()).chain(self.test.iter())
    }

    /// Serialises the dataset to JSON (replayable experiments).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Restores a dataset serialised with [`Dataset::to_json`].
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }

    /// Checks every cross-reference in the dataset: courier and AOI ids
    /// in range, ground-truth routes that are true permutations, and
    /// aligned truth/query lengths. Generated datasets satisfy this by
    /// construction; loaders should call it on anything read from disk
    /// so a hand-edited or corrupted file fails with a message naming
    /// the offending sample instead of an index-out-of-bounds panic
    /// deep inside graph construction.
    pub fn validate(&self) -> Result<(), String> {
        let n_aois = self.city.aois.len();
        for c in &self.couriers {
            if let Some(&bad) = c.territory.iter().find(|&&a| a >= n_aois) {
                return Err(format!(
                    "courier {}: territory references AOI {bad} but the city has {n_aois}",
                    c.id
                ));
            }
        }
        for (split, samples) in [("train", &self.train), ("val", &self.val), ("test", &self.test)] {
            for (i, s) in samples.iter().enumerate() {
                let at = |what: &str| format!("{split} sample {i}: {what}");
                if s.query.courier_id >= self.couriers.len() {
                    return Err(at(&format!(
                        "courier_id {} out of range (fleet has {})",
                        s.query.courier_id,
                        self.couriers.len()
                    )));
                }
                if let Some(o) = s.query.orders.iter().find(|o| o.aoi_id >= n_aois) {
                    return Err(at(&format!(
                        "order references AOI {} but the city has {n_aois}",
                        o.aoi_id
                    )));
                }
                let n = s.query.num_locations();
                if !is_permutation(&s.truth.route, n) {
                    return Err(at(&format!("route is not a permutation of the {n} locations")));
                }
                if s.truth.arrival.len() != n {
                    return Err(at(&format!(
                        "{} arrival times for {n} locations",
                        s.truth.arrival.len()
                    )));
                }
                let m = s.query.distinct_aois().len();
                if !is_permutation(&s.truth.aoi_route, m) {
                    return Err(at(&format!(
                        "AOI route is not a permutation of the {m} visited AOIs"
                    )));
                }
                if s.truth.aoi_arrival.len() != m {
                    return Err(at(&format!(
                        "{} AOI arrival times for {m} visited AOIs",
                        s.truth.aoi_arrival.len()
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Whether `xs` is a permutation of `0..n`.
fn is_permutation(xs: &[usize], n: usize) -> bool {
    if xs.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &x in xs {
        if x >= n || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

/// Builds datasets from a [`DatasetConfig`].
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    config: DatasetConfig,
}

impl DatasetBuilder {
    /// Creates a builder.
    pub fn new(config: DatasetConfig) -> Self {
        Self { config }
    }

    /// Generates the dataset. Deterministic in the config seed;
    /// per-sample RNG streams make generation embarrassingly parallel.
    pub fn build(&self) -> Dataset {
        let cfg = &self.config;
        let city = City::generate(&cfg.city);
        let couriers = city.generate_couriers(cfg.n_couriers, cfg.territory_size, cfg.seed);
        let total_days = cfg.split.total();

        let jobs: Vec<(usize, usize, usize)> = (0..total_days)
            .flat_map(|day| {
                (0..cfg.n_couriers)
                    .flat_map(move |c| (0..cfg.samples_per_courier_day).map(move |k| (day, c, k)))
            })
            .collect();

        let sim = BehaviorSim::new(&city, cfg.behavior.clone());
        let mut day_samples: Vec<(usize, RtpSample)> = jobs
            .par_iter()
            .filter_map(|&(day, c, k)| {
                let stream = splitmix64(
                    cfg.seed ^ splitmix64((day as u64) << 40 | (c as u64) << 16 | k as u64),
                );
                let mut rng = StdRng::seed_from_u64(stream);
                let sample = generate_sample(&city, &sim, &couriers[c], day, &mut rng, cfg)?;
                Some((day, sample))
            })
            .collect();
        // Par iteration order is deterministic for par_iter over a Vec +
        // collect, but sort anyway to make provenance obvious.
        day_samples.sort_by_key(|(day, s)| (*day, s.query.courier_id, s.query.time as i64));

        let mut train = Vec::new();
        let mut val = Vec::new();
        let mut test = Vec::new();
        for (day, s) in day_samples {
            if day < cfg.split.train_days {
                train.push(s);
            } else if day < cfg.split.train_days + cfg.split.val_days {
                val.push(s);
            } else {
                test.push(s);
            }
        }
        Dataset { city, couriers, train, val, test, config: cfg.clone() }
    }
}

/// Weather of a given day (deterministic in the dataset seed).
fn day_weather(seed: u64, day: usize) -> Weather {
    let h = splitmix64(seed ^ 0x5EA7 ^ (day as u64) << 3);
    // ~55% sunny, 25% cloudy, 15% rainy, 5% storm
    match h % 100 {
        0..=54 => Weather::Sunny,
        55..=79 => Weather::Cloudy,
        80..=94 => Weather::Rainy,
        _ => Weather::Storm,
    }
}

/// Generates one RTP sample for a courier on a day, or `None` if the
/// drawn size falls outside the configured filter (mirroring the paper's
/// "selected routes with < 20 locations and < 10 AOIs").
fn generate_sample(
    city: &City,
    sim: &BehaviorSim<'_>,
    courier: &Courier,
    day: usize,
    rng: &mut StdRng,
    cfg: &DatasetConfig,
) -> Option<RtpSample> {
    let weather = day_weather(cfg.seed, day);
    let weekday = (day % 7) as u8;
    // Query times spread over the working day (8:00–18:00).
    let time = rng.gen_range(480.0..1080.0f32);

    // Number of AOIs: 1 + Poisson-ish(mean-1), truncated to the cap.
    let m = (1 + poisson_knuth(rng, (cfg.mean_aois - 1.0).max(0.1))).min(cfg.max_aois);
    let m = m.min(courier.territory.len());

    // Pick m AOIs from the territory, biased toward the courier position.
    let courier_pos = {
        let a = city.aoi(courier.territory[rng.gen_range(0..courier.territory.len())]);
        Point { x: a.center.x + rng.gen_range(-0.3..0.3), y: a.center.y + rng.gen_range(-0.3..0.3) }
    };
    let mut pool = courier.territory.clone();
    let mut chosen = Vec::with_capacity(m);
    for _ in 0..m {
        let idx = rng.gen_range(0..pool.len());
        chosen.push(pool.swap_remove(idx));
    }

    // Locations per AOI: 1 + Geometric, calibrated so n/m ≈ 7.64/4.08.
    let mut orders = Vec::new();
    for &aoi_id in &chosen {
        let aoi = city.aoi(aoi_id);
        let cnt = 1 + geometric(rng, 0.52);
        for _ in 0..cnt {
            let angle = rng.gen_range(0.0..std::f32::consts::TAU);
            let r = aoi.radius * rng.gen_range(0.0f32..1.0).sqrt();
            orders.push(Order {
                pos: Point { x: aoi.center.x + r * angle.cos(), y: aoi.center.y + r * angle.sin() },
                aoi_id,
                deadline: time + rng.gen_range(30.0..180.0),
                accept_time: time - rng.gen_range(5.0..120.0),
            });
        }
    }
    if orders.len() < cfg.locations_range.0 || orders.len() > cfg.locations_range.1 {
        return None;
    }

    let query = RtpQuery { courier_id: courier.id, time, courier_pos, orders, weather, weekday };
    let truth = sim.simulate(&query, courier, rng);
    Some(RtpSample { query, truth })
}

/// Knuth's Poisson sampler (fine for small means).
fn poisson_knuth(rng: &mut StdRng, mean: f32) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f32;
    loop {
        p *= rng.gen_range(0.0..1.0f32);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 64 {
            return k; // numerically impossible for our means; guard anyway
        }
    }
}

/// Geometric number of failures before first success.
fn geometric(rng: &mut StdRng, p: f64) -> usize {
    let mut k = 0usize;
    while !rng.gen_bool(p) {
        k += 1;
        if k > 64 {
            break;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = DatasetBuilder::new(DatasetConfig::tiny(5)).build();
        let b = DatasetBuilder::new(DatasetConfig::tiny(5)).build();
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(
            serde_json::to_string(&a.train[0]).unwrap(),
            serde_json::to_string(&b.train[0]).unwrap()
        );
    }

    #[test]
    fn splits_are_disjoint_and_nonempty() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(1)).build();
        assert!(!d.train.is_empty());
        assert!(!d.val.is_empty());
        assert!(!d.test.is_empty());
        assert!(d.train.len() > d.val.len());
        assert!(d.train.len() > d.test.len());
    }

    #[test]
    fn samples_respect_filters() {
        let cfg = DatasetConfig::tiny(2);
        let d = DatasetBuilder::new(cfg.clone()).build();
        for s in d.all_samples() {
            let n = s.query.num_locations();
            let m = s.query.distinct_aois().len();
            assert!(n >= cfg.locations_range.0 && n <= cfg.locations_range.1, "n={n}");
            assert!(m <= cfg.max_aois, "m={m}");
            assert_eq!(s.truth.route.len(), n);
            assert_eq!(s.truth.arrival.len(), n);
            assert_eq!(s.truth.aoi_route.len(), m);
            assert_eq!(s.truth.aoi_arrival.len(), m);
        }
    }

    #[test]
    fn sample_size_statistics_match_paper_bands() {
        // Paper Fig. 4: mean 7.64 locations and 4.08 AOIs per sample.
        let d = DatasetBuilder::new(DatasetConfig::quick(3)).build();
        let n_mean: f32 = d.train.iter().map(|s| s.query.num_locations() as f32).sum::<f32>()
            / d.train.len() as f32;
        let m_mean: f32 = d.train.iter().map(|s| s.query.distinct_aois().len() as f32).sum::<f32>()
            / d.train.len() as f32;
        assert!((5.5..10.0).contains(&n_mean), "locations/sample {n_mean} out of band");
        assert!((3.0..5.5).contains(&m_mean), "AOIs/sample {m_mean} out of band");
    }

    #[test]
    fn arrival_time_statistics_match_paper_bands() {
        // Paper Fig. 4(a)/(b): mean arrival ≈ 60 min, most < 120 min.
        let d = DatasetBuilder::new(DatasetConfig::quick(4)).build();
        let mut all = Vec::new();
        for s in &d.train {
            all.extend_from_slice(&s.truth.arrival);
        }
        let mean = all.iter().sum::<f32>() / all.len() as f32;
        let under_120 = all.iter().filter(|&&t| t < 120.0).count() as f32 / all.len() as f32;
        assert!((35.0..85.0).contains(&mean), "mean arrival {mean} out of calibration band");
        assert!(under_120 > 0.80, "too many arrivals over 120 min: {under_120}");
    }

    #[test]
    fn validate_accepts_generated_datasets() {
        DatasetBuilder::new(DatasetConfig::tiny(11)).build().validate().unwrap();
    }

    #[test]
    fn validate_names_the_offending_sample() {
        let build = || DatasetBuilder::new(DatasetConfig::tiny(11)).build();

        let mut d = build();
        d.val[1].query.courier_id = 999;
        let err = d.validate().unwrap_err();
        assert!(err.contains("val sample 1") && err.contains("courier_id 999"), "{err}");

        let mut d = build();
        d.train[0].truth.route[0] = d.train[0].truth.route[1];
        let err = d.validate().unwrap_err();
        assert!(err.contains("train sample 0") && err.contains("permutation"), "{err}");

        let mut d = build();
        d.test[2].query.orders[0].aoi_id = 100_000;
        let err = d.validate().unwrap_err();
        assert!(err.contains("test sample 2") && err.contains("AOI 100000"), "{err}");

        let mut d = build();
        d.train[3].truth.arrival.pop();
        let err = d.validate().unwrap_err();
        assert!(err.contains("train sample 3") && err.contains("arrival"), "{err}");

        let mut d = build();
        d.couriers[0].territory.push(100_000);
        let err = d.validate().unwrap_err();
        assert!(err.contains("courier 0") && err.contains("territory"), "{err}");
    }

    #[test]
    fn json_roundtrip() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(9)).build();
        let s = d.to_json().unwrap();
        let d2 = Dataset::from_json(&s).unwrap();
        assert_eq!(d.train.len(), d2.train.len());
        assert_eq!(d.city.aois.len(), d2.city.aois.len());
    }

    #[test]
    fn weather_distribution_is_mostly_clear() {
        let sunny = (0..1000).filter(|&d| day_weather(1, d) == Weather::Sunny).count();
        assert!((400..700).contains(&sunny), "sunny days {sunny}/1000 out of band");
    }
}
