//! Dataset statistics used to regenerate paper Fig. 4 and the §V.A
//! transfer-count analysis.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::behavior::BehaviorSim;
use crate::dataset::Dataset;
use crate::types::{Order, Point, RtpQuery, Weather};

/// A simple equal-width histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub start: f32,
    /// Bin width.
    pub width: f32,
    /// Per-bin counts; the last bin also collects overflow.
    pub counts: Vec<u64>,
    /// Mean of the raw values.
    pub mean: f32,
    /// Number of values.
    pub n: u64,
}

impl Histogram {
    /// Builds a histogram of `values` with `bins` bins of `width` from
    /// `start`.
    pub fn build(values: &[f32], start: f32, width: f32, bins: usize) -> Self {
        assert!(bins >= 1 && width > 0.0);
        let mut counts = vec![0u64; bins];
        let mut sum = 0.0f64;
        for &v in values {
            let b = (((v - start) / width).floor().max(0.0) as usize).min(bins - 1);
            counts[b] += 1;
            sum += v as f64;
        }
        let n = values.len() as u64;
        Self { start, width, counts, mean: if n > 0 { (sum / n as f64) as f32 } else { 0.0 }, n }
    }

    /// Fraction of values in bins strictly left of `edge`.
    pub fn fraction_below(&self, edge: f32) -> f32 {
        if self.n == 0 {
            return 0.0;
        }
        let cut =
            (((edge - self.start) / self.width).floor().max(0.0) as usize).min(self.counts.len());
        let below: u64 = self.counts[..cut].iter().sum();
        below as f32 / self.n as f32
    }
}

/// Everything Fig. 4 plots, plus the §V.A transfer analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataDistribution {
    /// Fig. 4(a): location arrival-time histogram (minutes).
    pub location_arrival: Histogram,
    /// Fig. 4(b): AOI arrival-time histogram (minutes).
    pub aoi_arrival: Histogram,
    /// Fig. 4(c): locations-per-sample histogram.
    pub locations_per_sample: Histogram,
    /// Fig. 4(d): AOIs-per-sample histogram.
    pub aois_per_sample: Histogram,
    /// §V.A: average per-courier-day transfers between locations.
    pub avg_location_transfers_per_day: f32,
    /// §V.A: average per-courier-day transfers between AOIs.
    pub avg_aoi_transfers_per_day: f32,
}

/// Computes Fig. 4 statistics over every split of `dataset`, plus the
/// transfer analysis from simulated full courier days.
pub fn data_distribution(dataset: &Dataset) -> DataDistribution {
    let mut loc_arr = Vec::new();
    let mut aoi_arr = Vec::new();
    let mut n_per = Vec::new();
    let mut m_per = Vec::new();
    for s in dataset.all_samples() {
        loc_arr.extend_from_slice(&s.truth.arrival);
        aoi_arr.extend_from_slice(&s.truth.aoi_arrival);
        n_per.push(s.query.num_locations() as f32);
        m_per.push(s.query.distinct_aois().len() as f32);
    }
    let (loc_t, aoi_t) = transfer_counts(dataset);
    DataDistribution {
        location_arrival: Histogram::build(&loc_arr, 0.0, 15.0, 16),
        aoi_arrival: Histogram::build(&aoi_arr, 0.0, 15.0, 16),
        locations_per_sample: Histogram::build(&n_per, 0.0, 1.0, 21),
        aois_per_sample: Histogram::build(&m_per, 0.0, 1.0, 11),
        avg_location_transfers_per_day: loc_t,
        avg_aoi_transfers_per_day: aoi_t,
    }
}

/// Simulates full courier days (~50 orders spanning the day's AOI visits)
/// and counts transfers between consecutive served locations vs between
/// consecutive distinct AOIs, reproducing the paper's 50.97 / 6.20
/// analysis.
pub fn transfer_counts(dataset: &Dataset) -> (f32, f32) {
    let sim = BehaviorSim::new(&dataset.city, dataset.config.behavior.clone());
    let mut loc_transfers = 0usize;
    let mut aoi_transfers = 0usize;
    let mut days = 0usize;
    for (d, courier) in dataset.couriers.iter().enumerate().take(24) {
        let mut rng = StdRng::seed_from_u64(dataset.config.seed ^ 0xDA11 ^ d as u64);
        // A full day: ~7 AOI blocks of ~7-8 orders each (≈ 52 locations),
        // consistent with the paper's 50.97 location transfers.
        let m = 7;
        let mut orders = Vec::new();
        let mut pool = courier.territory.clone();
        for _ in 0..m.min(pool.len()) {
            let aoi_id = pool.swap_remove(rng.gen_range(0..pool.len()));
            let aoi = dataset.city.aoi(aoi_id);
            let cnt = rng.gen_range(6..=9);
            for _ in 0..cnt {
                let angle = rng.gen_range(0.0..std::f32::consts::TAU);
                let r = aoi.radius * rng.gen_range(0.0f32..1.0).sqrt();
                orders.push(Order {
                    pos: Point {
                        x: aoi.center.x + r * angle.cos(),
                        y: aoi.center.y + r * angle.sin(),
                    },
                    aoi_id,
                    deadline: 480.0 + rng.gen_range(60.0..540.0),
                    accept_time: 470.0,
                });
            }
        }
        let query = RtpQuery {
            courier_id: courier.id,
            time: 480.0,
            courier_pos: dataset.city.aoi(courier.territory[0]).center,
            orders,
            weather: Weather::Sunny,
            weekday: (d % 7) as u8,
        };
        let truth = sim.simulate(&query, courier, &mut rng);
        loc_transfers += query.orders.len() - 1;
        let order_aoi = query.order_aoi_indices();
        aoi_transfers +=
            truth.route.windows(2).filter(|w| order_aoi[w[0]] != order_aoi[w[1]]).count();
        days += 1;
    }
    (loc_transfers as f32 / days as f32, aoi_transfers as f32 / days as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, DatasetConfig};

    #[test]
    fn histogram_counts_and_overflow() {
        let h = Histogram::build(&[0.5, 1.5, 2.5, 99.0], 0.0, 1.0, 3);
        assert_eq!(h.counts, vec![1, 1, 2], "overflow lands in last bin");
        assert_eq!(h.n, 4);
        assert!((h.fraction_below(2.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn histogram_negative_values_clamp_to_first_bin() {
        let h = Histogram::build(&[-5.0, 0.1], 0.0, 1.0, 2);
        assert_eq!(h.counts, vec![2, 0]);
    }

    #[test]
    fn transfer_analysis_shows_block_structure() {
        // Paper §V.A: ~51 location transfers vs ~6.2 AOI transfers per
        // courier-day. Assert the qualitative gap (≈ 8x) and rough bands.
        let d = DatasetBuilder::new(DatasetConfig::quick(11)).build();
        let (loc_t, aoi_t) = transfer_counts(&d);
        assert!((40.0..65.0).contains(&loc_t), "location transfers/day {loc_t}");
        assert!((5.0..12.0).contains(&aoi_t), "AOI transfers/day {aoi_t}");
        assert!(loc_t / aoi_t > 4.0, "block structure missing: ratio {}", loc_t / aoi_t);
    }

    #[test]
    fn distribution_summary_is_consistent() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(8)).build();
        let dist = data_distribution(&d);
        let n_samples: u64 = d.all_samples().count() as u64;
        assert_eq!(dist.locations_per_sample.n, n_samples);
        assert_eq!(dist.aois_per_sample.n, n_samples);
        assert!(dist.location_arrival.n >= dist.aoi_arrival.n, "n >= m per sample");
        assert!(dist.location_arrival.mean > 0.0);
    }
}
