//! # rtp-sim
//!
//! A synthetic instant-logistics world: the data substrate of the
//! M²G4RTP reproduction.
//!
//! The paper evaluates on a proprietary Cainiao package pick-up dataset
//! (Hangzhou, 8,600 AOIs, 550 couriers, 3 months). That data is not
//! available, so this crate builds the closest synthetic equivalent and
//! — crucially — plants in the generative process exactly the structure
//! the paper's model is designed to exploit:
//!
//! 1. **High-level AOI transfer modes** (paper §I, limitation 1): each
//!    courier has a stable, courier-specific habit score per AOI, and the
//!    simulated ground-truth routes serve AOIs as contiguous blocks
//!    ordered by a blend of habit, distance and deadline pressure.
//! 2. **Route/time correlation** (limitation 2): arrival times are the
//!    physical consequence of the route (cumulative travel at the
//!    courier's weather-adjusted speed plus per-stop service times), so
//!    nearby route positions have nearby times.
//! 3. **Spatial correlation** (limitation 3): locations cluster inside
//!    AOIs, AOIs cluster inside districts, and travel cost is metric.
//!
//! Calibration targets come from the paper's published statistics
//! (§V.A, Fig. 4): ~7.6 locations and ~4.1 AOIs per sample, mean arrival
//! time ≈ 60 min with most arrivals under 120 min, and per-courier-day
//! transfer counts of ≈ 51 between locations vs ≈ 6.2 between AOIs.
//!
//! ```
//! use rtp_sim::{DatasetConfig, DatasetBuilder};
//!
//! let config = DatasetConfig::tiny(42);
//! let dataset = DatasetBuilder::new(config).build();
//! assert!(!dataset.train.is_empty());
//! let s = &dataset.train[0];
//! assert_eq!(s.truth.route.len(), s.query.orders.len());
//! ```

mod behavior;
mod city;
mod dataset;
mod types;

pub mod stats;

pub use behavior::{BehaviorConfig, BehaviorSim};
pub use city::{City, CityConfig};
pub use dataset::{Dataset, DatasetBuilder, DatasetConfig, SplitSizes};
pub use types::{
    Aoi, AoiType, Courier, GroundTruth, Order, Point, RtpQuery, RtpSample, Weather,
    MINUTES_PER_KM_BASE,
};
