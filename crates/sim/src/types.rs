//! Core domain types: points, AOIs, locations/orders, couriers, queries
//! and ground-truth labels (paper §III, Definitions 1–5).

use serde::{Deserialize, Serialize};

/// Reference travel pace used by naive baselines: minutes per km at the
/// fleet's nominal speed (12 km/h ⇒ 5 min/km).
pub const MINUTES_PER_KM_BASE: f32 = 5.0;

/// A point in a local planar approximation of the city, in kilometres.
///
/// The paper uses longitude/latitude; at city scale a planar frame is
/// metrically equivalent and keeps distance computations exact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate, km.
    pub x: f32,
    /// North-south coordinate, km.
    pub y: f32,
}

impl Point {
    /// Euclidean distance in km.
    pub fn dist(&self, other: &Point) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// The functional type of an AOI (paper Definition 2: "community, office
/// building, hospital, etc"). Types differ in per-stop service time: an
/// office tower with a front desk is faster to serve than a gated
/// residential compound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AoiType {
    /// Residential quarter / gated community.
    Residential,
    /// Office building.
    Office,
    /// Shopping mall.
    Mall,
    /// Hospital.
    Hospital,
    /// School or campus.
    School,
    /// Industrial park / warehouse zone.
    Industrial,
}

impl AoiType {
    /// All variants, in embedding-index order.
    pub const ALL: [AoiType; 6] = [
        AoiType::Residential,
        AoiType::Office,
        AoiType::Mall,
        AoiType::Hospital,
        AoiType::School,
        AoiType::Industrial,
    ];

    /// Stable small integer index (embedding id).
    pub fn index(self) -> usize {
        match self {
            AoiType::Residential => 0,
            AoiType::Office => 1,
            AoiType::Mall => 2,
            AoiType::Hospital => 3,
            AoiType::School => 4,
            AoiType::Industrial => 5,
        }
    }

    /// Mean per-stop service time in minutes for this AOI type.
    pub fn base_service_min(self) -> f32 {
        match self {
            AoiType::Residential => 5.5,
            AoiType::Office => 3.5,
            AoiType::Mall => 4.5,
            AoiType::Hospital => 6.0,
            AoiType::School => 5.0,
            AoiType::Industrial => 4.0,
        }
    }
}

/// An Area Of Interest (paper Definition 2): `a = (id, type, g^a)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Aoi {
    /// Unique AOI id within the city.
    pub id: usize,
    /// Functional type.
    pub kind: AoiType,
    /// Central coordinate `g^a`.
    pub center: Point,
    /// Radius within which the AOI's locations lie, km.
    pub radius: f32,
}

/// A pick-up order: the location triplet of Definition 1,
/// `l = (g^l, a^l, t_deadline)`, plus the order accept time used as a
/// node feature (Eq. 12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Order {
    /// Position `g^l`.
    pub pos: Point,
    /// AOI id `a^l` the location belongs to.
    pub aoi_id: usize,
    /// Promised arrival deadline, minutes since day start.
    pub deadline: f32,
    /// Time the platform accepted the order, minutes since day start.
    pub accept_time: f32,
}

/// Weather regime of a day; scales effective courier speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weather {
    /// Clear day.
    Sunny,
    /// Overcast.
    Cloudy,
    /// Rain: couriers slow down noticeably.
    Rainy,
    /// Storm: strongly reduced speed.
    Storm,
}

impl Weather {
    /// All variants, in embedding-index order.
    pub const ALL: [Weather; 4] = [Weather::Sunny, Weather::Cloudy, Weather::Rainy, Weather::Storm];

    /// Stable small integer index (embedding id / feature code).
    pub fn index(self) -> usize {
        match self {
            Weather::Sunny => 0,
            Weather::Cloudy => 1,
            Weather::Rainy => 2,
            Weather::Storm => 3,
        }
    }

    /// Multiplier on courier speed.
    pub fn speed_factor(self) -> f32 {
        match self {
            Weather::Sunny => 1.0,
            Weather::Cloudy => 0.95,
            Weather::Rainy => 0.80,
            Weather::Storm => 0.65,
        }
    }
}

/// A courier and their profile features `u` (paper Eq. 17): working
/// hours, driving speed, attendance — plus the *habit* machinery that
/// realises the paper's "high-level transfer mode between AOIs".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Courier {
    /// Unique courier id.
    pub id: usize,
    /// Average driving speed, km/h (`x_v^g`).
    pub speed_kmh: f32,
    /// Average working hours per day (`x_T^g`).
    pub work_hours: f32,
    /// Attendance rate over the last two months, in [0,1].
    pub attendance: f32,
    /// AOI ids this courier regularly serves. Habit only makes sense over
    /// a stable territory; real couriers own a fixed beat.
    pub territory: Vec<usize>,
    /// Seed of the courier's private habit function.
    pub habit_seed: u64,
}

impl Courier {
    /// The courier's stable preference score for visiting an AOI early,
    /// in `[0,1)`. Deterministic in `(habit_seed, aoi_id)`: the same
    /// courier prefers the same AOI ordering across days, which is the
    /// learnable high-level pattern of paper §I Figure 1.
    pub fn habit_score(&self, aoi_id: usize) -> f32 {
        let h = splitmix64(self.habit_seed ^ (aoi_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (h >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// One RTP request (paper §III-B): courier `u` at time `t` with the set
/// of unvisited locations and the global context features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RtpQuery {
    /// Which courier.
    pub courier_id: usize,
    /// Current time, minutes since day start.
    pub time: f32,
    /// Courier's current position.
    pub courier_pos: Point,
    /// Unvisited locations `V^l` with their order metadata.
    pub orders: Vec<Order>,
    /// Weather code (`x_weather^g`).
    pub weather: Weather,
    /// Weekday 0–6 (`x_weekday^g`).
    pub weekday: u8,
}

impl RtpQuery {
    /// Number of unvisited locations `n`.
    pub fn num_locations(&self) -> usize {
        self.orders.len()
    }

    /// The distinct AOIs `V^a` of this query, in first-appearance order
    /// over `orders`. Every crate in the workspace uses this ordering, so
    /// AOI index `k` means the same node everywhere.
    pub fn distinct_aois(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for o in &self.orders {
            if !out.contains(&o.aoi_id) {
                out.push(o.aoi_id);
            }
        }
        out
    }

    /// Maps each order to the index of its AOI within
    /// [`RtpQuery::distinct_aois`].
    pub fn order_aoi_indices(&self) -> Vec<usize> {
        let aois = self.distinct_aois();
        self.orders
            .iter()
            .map(|o| aois.iter().position(|&a| a == o.aoi_id).expect("order AOI present"))
            .collect()
    }
}

/// Ground-truth labels for one query (paper Definitions 4–5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Location route: `route[j]` is the order-index visited at step `j`
    /// (a permutation of `0..n`).
    pub route: Vec<usize>,
    /// Arrival-time gaps per location, minutes from query time, aligned
    /// with `query.orders` indexing (`y_i^l`, Eq. 8).
    pub arrival: Vec<f32>,
    /// AOI route: `aoi_route[j]` is the AOI-index (into
    /// `query.distinct_aois()`) first entered at AOI-step `j`.
    pub aoi_route: Vec<usize>,
    /// Arrival-time gap at each AOI (time of first location served in
    /// it), aligned with `query.distinct_aois()` indexing (`y_j^a`, Eq. 9).
    pub aoi_arrival: Vec<f32>,
}

impl GroundTruth {
    /// Position of each order in the route: `ranks()[i] = j` such that
    /// `route[j] == i`. This is the `o_i` of the KRC/LSD metrics.
    pub fn ranks(&self) -> Vec<usize> {
        invert_permutation(&self.route)
    }

    /// Position of each AOI in the AOI route.
    pub fn aoi_ranks(&self) -> Vec<usize> {
        invert_permutation(&self.aoi_route)
    }
}

/// Inverts a permutation given as a visit sequence.
///
/// # Panics
/// Panics if `route` is not a permutation of `0..route.len()`.
pub(crate) fn invert_permutation(route: &[usize]) -> Vec<usize> {
    let mut ranks = vec![usize::MAX; route.len()];
    for (j, &i) in route.iter().enumerate() {
        assert!(i < route.len() && ranks[i] == usize::MAX, "not a permutation: {route:?}");
        ranks[i] = j;
    }
    ranks
}

/// A labelled training/evaluation sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RtpSample {
    /// The RTP request.
    pub query: RtpQuery,
    /// Its simulated ground truth.
    pub truth: GroundTruth,
}

/// SplitMix64: tiny, high-quality 64-bit mixer used for stable
/// per-(entity, entity) hashes.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(b.dist(&a), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn aoi_type_indices_are_distinct_and_dense() {
        let mut seen = vec![false; AoiType::ALL.len()];
        for t in AoiType::ALL {
            assert!(!seen[t.index()], "duplicate index");
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weather_slows_couriers_monotonically() {
        assert!(Weather::Sunny.speed_factor() > Weather::Cloudy.speed_factor());
        assert!(Weather::Cloudy.speed_factor() > Weather::Rainy.speed_factor());
        assert!(Weather::Rainy.speed_factor() > Weather::Storm.speed_factor());
    }

    #[test]
    fn habit_score_is_stable_and_courier_specific() {
        let c1 = Courier {
            id: 0,
            speed_kmh: 12.0,
            work_hours: 8.0,
            attendance: 0.95,
            territory: vec![],
            habit_seed: 1,
        };
        let c2 = Courier { habit_seed: 2, ..c1.clone() };
        assert_eq!(c1.habit_score(7), c1.habit_score(7), "habit must be deterministic");
        assert_ne!(c1.habit_score(7), c2.habit_score(7), "habit must differ across couriers");
        for aoi in 0..100 {
            let s = c1.habit_score(aoi);
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn distinct_aois_first_appearance_order() {
        let mk = |aoi_id| Order {
            pos: Point { x: 0.0, y: 0.0 },
            aoi_id,
            deadline: 100.0,
            accept_time: 0.0,
        };
        let q = RtpQuery {
            courier_id: 0,
            time: 0.0,
            courier_pos: Point { x: 0.0, y: 0.0 },
            orders: vec![mk(5), mk(2), mk(5), mk(9), mk(2)],
            weather: Weather::Sunny,
            weekday: 0,
        };
        assert_eq!(q.distinct_aois(), vec![5, 2, 9]);
        assert_eq!(q.order_aoi_indices(), vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn ranks_invert_route() {
        let t = GroundTruth {
            route: vec![2, 0, 1],
            arrival: vec![0.0; 3],
            aoi_route: vec![0],
            aoi_arrival: vec![0.0],
        };
        assert_eq!(t.ranks(), vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invert_rejects_non_permutation() {
        invert_permutation(&[0, 0, 1]);
    }
}
