//! Edge-case and robustness tests for the behaviour simulator and
//! dataset generator: degenerate queries, extreme configurations, and
//! boundary conditions the unit tests don't reach.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtp_sim::{
    BehaviorConfig, BehaviorSim, City, CityConfig, DatasetBuilder, DatasetConfig, Order, Point,
    RtpQuery, Weather,
};

fn small_city() -> City {
    City::generate(&CityConfig { n_aois: 10, n_districts: 2, ..CityConfig::default() })
}

fn order_at(city: &City, aoi: usize, dx: f32, deadline: f32) -> Order {
    let a = city.aoi(aoi);
    Order {
        pos: Point { x: a.center.x + dx, y: a.center.y },
        aoi_id: aoi,
        deadline,
        accept_time: 0.0,
    }
}

#[test]
fn single_order_query_works() {
    let city = small_city();
    let couriers = city.generate_couriers(1, 5, 3);
    let q = RtpQuery {
        courier_id: 0,
        time: 500.0,
        courier_pos: city.aoi(0).center,
        orders: vec![order_at(&city, couriers[0].territory[0], 0.01, 600.0)],
        weather: Weather::Sunny,
        weekday: 0,
    };
    let sim = BehaviorSim::new(&city, BehaviorConfig::default());
    let t = sim.simulate(&q, &couriers[0], &mut StdRng::seed_from_u64(1));
    assert_eq!(t.route, vec![0]);
    assert_eq!(t.aoi_route, vec![0]);
    assert_eq!(t.arrival.len(), 1);
    assert!(t.arrival[0] >= 0.0);
    assert_eq!(t.aoi_arrival[0], t.arrival[0]);
}

#[test]
fn all_orders_in_one_aoi() {
    let city = small_city();
    let couriers = city.generate_couriers(1, 5, 4);
    let aoi = couriers[0].territory[0];
    let orders: Vec<Order> =
        (0..6).map(|i| order_at(&city, aoi, i as f32 * 0.01, 600.0 + i as f32)).collect();
    let q = RtpQuery {
        courier_id: 0,
        time: 500.0,
        courier_pos: city.aoi(aoi).center,
        orders,
        weather: Weather::Rainy,
        weekday: 6,
    };
    let sim = BehaviorSim::new(&city, BehaviorConfig::default());
    let t = sim.simulate(&q, &couriers[0], &mut StdRng::seed_from_u64(2));
    assert_eq!(t.aoi_route, vec![0], "single AOI means a single block");
    assert_eq!(t.route.len(), 6);
}

#[test]
fn coincident_locations_do_not_break_simulation() {
    // Two orders at the exact same point (apartment building): distance
    // 0 between them must not produce NaNs or panics.
    let city = small_city();
    let couriers = city.generate_couriers(1, 5, 5);
    let aoi = couriers[0].territory[0];
    let o = order_at(&city, aoi, 0.0, 600.0);
    let q = RtpQuery {
        courier_id: 0,
        time: 500.0,
        courier_pos: city.aoi(aoi).center,
        orders: vec![o.clone(), o.clone(), o],
        weather: Weather::Sunny,
        weekday: 2,
    };
    let sim = BehaviorSim::new(&city, BehaviorConfig::default());
    let t = sim.simulate(&q, &couriers[0], &mut StdRng::seed_from_u64(3));
    assert!(t.arrival.iter().all(|a| a.is_finite()));
    assert_eq!(t.route.len(), 3);
}

#[test]
fn zero_block_break_yields_perfect_blocks() {
    let city = small_city();
    let couriers = city.generate_couriers(2, 6, 6);
    let cfg = BehaviorConfig { block_break_prob: 0.0, ..BehaviorConfig::default() };
    let sim = BehaviorSim::new(&city, cfg);
    let c = &couriers[0];
    let mut rng = StdRng::seed_from_u64(4);
    let orders: Vec<Order> = (0..3)
        .flat_map(|k| {
            let aoi = c.territory[k];
            (0..3).map(move |i| (aoi, i))
        })
        .map(|(aoi, i)| order_at(&city, aoi, i as f32 * 0.02, 600.0))
        .collect();
    let q = RtpQuery {
        courier_id: c.id,
        time: 480.0,
        courier_pos: city.aoi(c.territory[0]).center,
        orders,
        weather: Weather::Sunny,
        weekday: 3,
    };
    let t = sim.simulate(&q, c, &mut rng);
    let order_aoi = q.order_aoi_indices();
    let switches = t.route.windows(2).filter(|w| order_aoi[w[0]] != order_aoi[w[1]]).count();
    assert_eq!(switches, 2, "3 AOIs with no block-breaking ⇒ exactly 2 transfers");
}

#[test]
fn deadline_pressure_reorders_aois() {
    // With a huge urgency weight and zero habit/distance, the AOI whose
    // deadline is imminent must be served first.
    let city = small_city();
    let couriers = city.generate_couriers(1, 5, 7);
    let c = &couriers[0];
    let cfg = BehaviorConfig {
        habit_weight: 0.0,
        distance_weight: 0.0,
        urgency_weight: 50.0,
        decision_noise: 0.0,
        block_break_prob: 0.0,
        ..BehaviorConfig::default()
    };
    let sim = BehaviorSim::new(&city, cfg);
    let a0 = c.territory[0];
    let a1 = c.territory[1];
    let q = RtpQuery {
        courier_id: c.id,
        time: 480.0,
        courier_pos: city.aoi(a0).center, // starts right at a0
        orders: vec![
            order_at(&city, a0, 0.01, 2000.0), // relaxed deadline
            order_at(&city, a1, 0.01, 490.0),  // urgent!
        ],
        weather: Weather::Sunny,
        weekday: 0,
    };
    let t = sim.simulate(&q, c, &mut StdRng::seed_from_u64(5));
    assert_eq!(t.route[0], 1, "urgent AOI must be served first despite distance");
}

#[test]
fn dataset_with_minimal_split_sizes() {
    let cfg = DatasetConfig {
        split: rtp_sim::SplitSizes { train_days: 1, val_days: 1, test_days: 1 },
        ..DatasetConfig::tiny(77)
    };
    let d = DatasetBuilder::new(cfg).build();
    // minimal but functional — every split non-empty with n_couriers
    // × samples_per_day chances per day
    assert!(!d.train.is_empty());
    assert!(!d.val.is_empty());
    assert!(!d.test.is_empty());
}

#[test]
fn extreme_weather_day_routes_are_still_valid() {
    let d = DatasetBuilder::new(DatasetConfig::tiny(88)).build();
    // find storm samples (if any) and check their labels
    let mut found = 0;
    for s in d.all_samples() {
        if s.query.weather == Weather::Storm {
            found += 1;
            assert!(s.truth.arrival.iter().all(|a| a.is_finite() && *a >= 0.0));
        }
    }
    // tiny datasets may contain no storm days — that's fine; the
    // assertion above only needs to hold when they exist.
    let _ = found;
}
