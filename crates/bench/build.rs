//! Captures toolchain facts at compile time for `bench_meta_json()`:
//! the rustc version string and the `-C target-cpu` the workspace
//! builds with (from `.cargo/config.toml` via
//! `CARGO_ENCODED_RUSTFLAGS`). Runtime facts (nproc, detected CPU
//! features) are read in the helper itself.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=BENCH_RUSTC_VERSION={version}");

    // RUSTFLAGS items are \x1f-separated; `-C target-cpu=X` may arrive
    // as one item or as a ["-C", "target-cpu=X"] pair.
    let flags = std::env::var("CARGO_ENCODED_RUSTFLAGS").unwrap_or_default();
    let items: Vec<&str> = flags.split('\x1f').collect();
    let mut target_cpu = "generic".to_string();
    let mut i = 0;
    while i < items.len() {
        let item = items[i];
        if let Some(v) = item.strip_prefix("-Ctarget-cpu=") {
            target_cpu = v.to_string();
        } else if item == "-C" && i + 1 < items.len() {
            if let Some(v) = items[i + 1].strip_prefix("target-cpu=") {
                target_cpu = v.to_string();
            }
        }
        i += 1;
    }
    println!("cargo:rustc-env=BENCH_TARGET_CPU={target_cpu}");
    println!("cargo:rerun-if-env-changed=CARGO_ENCODED_RUSTFLAGS");
}
