//! Telemetry overhead: the cost of leaving the observability layer
//! compiled into the training hot loop.
//!
//! Three arms train the same model on the same data:
//! * **stripped** — metrics kill switch off, no trace sink: every
//!   counter/gauge/histogram update and span open collapses to one
//!   relaxed atomic load;
//! * **instrumented** — the default shipping configuration (metrics
//!   on, no trace sink attached);
//! * **traced** — metrics on plus an in-memory span sink.
//!
//! Arms are interleaved and the minimum loop time of each is compared,
//! so a background hiccup in one repetition cannot masquerade as
//! overhead. Telemetry must also be *write-only*: the final-epoch loss
//! bits must match across all arms. Writes `results/obs_overhead.json`.

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_bench::bench_dataset;

const EPOCHS: usize = 2;
const REPS: usize = 5;

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    Stripped,
    Instrumented,
    Traced,
}

impl Arm {
    fn label(self) -> &'static str {
        match self {
            Arm::Stripped => "stripped",
            Arm::Instrumented => "instrumented",
            Arm::Traced => "traced",
        }
    }
}

fn measure(arm: Arm) -> (f64, u32) {
    match arm {
        Arm::Stripped => rtp_obs::metrics::set_enabled(false),
        Arm::Instrumented => rtp_obs::metrics::set_enabled(true),
        Arm::Traced => {
            rtp_obs::metrics::set_enabled(true);
            rtp_obs::trace::attach_memory();
        }
    }
    let dataset = bench_dataset();
    let mut model = M2G4Rtp::new(ModelConfig::for_dataset(&dataset), 7);
    let cfg =
        TrainConfig { epochs: EPOCHS, patience: usize::MAX, threads: 1, ..TrainConfig::quick() };
    let report = Trainer::new(cfg).fit(&mut model, &dataset);
    let spans = rtp_obs::trace::detach().len();
    rtp_obs::metrics::set_enabled(true);
    if arm == Arm::Traced {
        assert!(spans > 0, "traced arm must have recorded spans");
    }
    let loss_bits = report.history.last().expect("ran at least one epoch").train_loss.to_bits();
    (report.train_loop_seconds, loss_bits)
}

fn main() {
    let arms = [Arm::Stripped, Arm::Instrumented, Arm::Traced];
    let mut best = [f64::MAX; 3];
    let mut loss_bits = [0u32; 3];
    // warm-up rep (page cache, allocator) then interleaved timed reps
    for &arm in &arms {
        measure(arm);
    }
    for _ in 0..REPS {
        for (i, &arm) in arms.iter().enumerate() {
            let (secs, bits) = measure(arm);
            best[i] = best[i].min(secs);
            loss_bits[i] = bits;
        }
    }

    let identical = loss_bits.iter().all(|&b| b == loss_bits[0]);
    assert!(identical, "telemetry must be write-only: loss bits diverged {loss_bits:?}");

    let overhead = |i: usize| (best[i] - best[0]) / best[0] * 100.0;
    for (i, &arm) in arms.iter().enumerate() {
        println!(
            "{:<12} min loop {:.3}s  ({:+.2}% vs stripped)",
            arm.label(),
            best[i],
            overhead(i)
        );
    }
    println!("loss bit-identical across arms: {identical}");

    let entries: Vec<String> = arms
        .iter()
        .enumerate()
        .map(|(i, &arm)| {
            format!(
                "    {{\"arm\": \"{}\", \"min_loop_seconds\": {:.4}, \"overhead_pct_vs_stripped\": {:.3}}}",
                arm.label(),
                best[i],
                overhead(i)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"epochs\": {EPOCHS},\n  \"reps\": {REPS},\n  \"loss_bit_identical_across_arms\": {identical},\n  \"rows\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&out).expect("create results dir");
    let path = out.join("obs_overhead.json");
    rtp_obs::fsio::write_atomic_str(&path, &json).expect("write results JSON");
    println!("wrote {}", path.display());
}
