//! Telemetry overhead: the cost of leaving the observability layer
//! compiled into the training hot loop.
//!
//! Three arms train the same model on the same data:
//! * **stripped** — metrics kill switch off, no trace sink: every
//!   counter/gauge/histogram update and span open collapses to one
//!   relaxed atomic load;
//! * **instrumented** — the default shipping configuration (metrics
//!   on, no trace sink attached);
//! * **traced** — metrics on plus an in-memory span sink.
//!
//! Arms are interleaved and the minimum loop time of each is compared,
//! so a background hiccup in one repetition cannot masquerade as
//! overhead. Telemetry must also be *write-only*: the final-epoch loss
//! bits must match across all arms. Writes `results/obs_overhead.json`.
//!
//! A fourth pair of arms measures the *serve* path: one closed-loop
//! client round-trips the same query stream twice against a live
//! batched server — once plain, once with `"trace": true` so every
//! reply carries a trace id and the five-stage latency breakdown. The
//! throughput delta is the full cost of per-request tracing (stage
//! stamps in the engine, flight-recorder events, the echoed JSON), and
//! the budget is ≤2%.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_bench::{bench_dataset, bench_model};
use rtp_cli::serve::{serve, ServeOptions};

const EPOCHS: usize = 2;
const REPS: usize = 5;
/// Requests per timed serve repetition (per arm).
const SERVE_REQUESTS: usize = 200;

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    Stripped,
    Instrumented,
    Traced,
}

impl Arm {
    fn label(self) -> &'static str {
        match self {
            Arm::Stripped => "stripped",
            Arm::Instrumented => "instrumented",
            Arm::Traced => "traced",
        }
    }
}

fn measure(arm: Arm) -> (f64, u32) {
    match arm {
        Arm::Stripped => rtp_obs::metrics::set_enabled(false),
        Arm::Instrumented => rtp_obs::metrics::set_enabled(true),
        Arm::Traced => {
            rtp_obs::metrics::set_enabled(true);
            rtp_obs::trace::attach_memory();
        }
    }
    let dataset = bench_dataset();
    let mut model = M2G4Rtp::new(ModelConfig::for_dataset(&dataset), 7);
    let cfg =
        TrainConfig { epochs: EPOCHS, patience: usize::MAX, threads: 1, ..TrainConfig::quick() };
    let report = Trainer::new(cfg).fit(&mut model, &dataset);
    let spans = rtp_obs::trace::detach().len();
    rtp_obs::metrics::set_enabled(true);
    if arm == Arm::Traced {
        assert!(spans > 0, "traced arm must have recorded spans");
    }
    let loss_bits = report.history.last().expect("ran at least one epoch").train_loss.to_bits();
    (report.train_loop_seconds, loss_bits)
}

/// Strips `"latency_ms":X,` and the `,"trace_id":N,"stages":{...}`
/// splice from a reply so a traced and an untraced reply to the same
/// query can be compared byte-for-byte.
fn strip_variable_fields(reply: &str) -> String {
    let mut body = reply.trim().to_string();
    if let Some(start) = body.find(",\"trace_id\":") {
        let stages_key = "\"stages\":{";
        let sk = body[start..].find(stages_key).expect("stages follows trace_id") + start;
        let close = body[sk + stages_key.len()..].find('}').expect("stages closes");
        body.replace_range(start..sk + stages_key.len() + close + 1, "");
    }
    let prefix = "{\"latency_ms\":";
    if let Some(rest) = body.strip_prefix(prefix) {
        if let Some(comma) = rest.find(',') {
            return format!("{{{}", &rest[comma + 1..]);
        }
    }
    body
}

/// One *paired* closed-loop pass: for each of `SERVE_REQUESTS` query
/// lines, a plain round trip immediately followed by a traced round
/// trip of the same line, each timed separately. Pairing at request
/// granularity means scheduler drift and CPU-frequency wander hit
/// both arms alike instead of whichever pass they landed in, which is
/// the only way a ≤2% budget is resolvable on a noisy 1-core box.
/// Returns (plain_seconds, traced_seconds) summed over the pass.
fn serve_pass(addr: &str, lines: &[String]) -> (f64, f64) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).expect("nodelay");
    let mut r = BufReader::new(s.try_clone().expect("clone"));
    let mut round_trip = |req: &str| -> (String, f64) {
        let mut reply = String::new();
        let t0 = Instant::now();
        s.write_all(req.as_bytes()).expect("send");
        r.read_line(&mut reply).expect("reply");
        (reply, t0.elapsed().as_secs_f64())
    };
    let (mut plain_secs, mut traced_secs) = (0.0, 0.0);
    for k in 0..SERVE_REQUESTS {
        let line = &lines[k % lines.len()];
        let (plain, dt) = round_trip(&format!("{line}\n"));
        plain_secs += dt;
        let (traced, dt) = round_trip(&format!("{{\"trace\":true,{}\n", &line[1..]));
        traced_secs += dt;
        // Verification outside both timers: the traced reply must be
        // byte-identical modulo latency and the trace splice, every
        // single pair.
        assert!(!plain.contains("\"error\""), "bench request failed: {plain}");
        assert!(!plain.contains("\"trace_id\":"), "untraced reply leaked trace: {plain}");
        assert!(traced.contains("\"trace_id\":"), "traced reply missing trace: {traced}");
        assert_eq!(
            strip_variable_fields(&plain),
            strip_variable_fields(&traced),
            "traced replies must differ only in trace fields"
        );
    }
    (plain_secs, traced_secs)
}

/// Interleaved plain/traced serve throughput against one live batched
/// server; returns min-time requests/s for (untraced, traced).
fn measure_serve() -> (f64, f64) {
    let dataset = bench_dataset();
    let model = bench_model(&dataset);
    let (addr_tx, addr_rx) = channel::<String>();
    struct AddrSink(std::sync::mpsc::Sender<String>, Vec<u8>);
    impl Write for AddrSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.1.extend_from_slice(buf);
            while let Some(pos) = self.1.iter().position(|&b| b == b'\n') {
                if let Some(addr) =
                    String::from_utf8_lossy(&self.1[..pos]).strip_prefix("listening on ")
                {
                    let _ = self.0.send(addr.to_string());
                }
                self.1.drain(..=pos);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let ds = dataset.clone();
    let opts = ServeOptions {
        workers: 1,
        allow_shutdown: true,
        batch_max: 4,
        batch_window: Duration::from_micros(200),
        ..Default::default()
    };
    let server = std::thread::spawn(move || {
        let mut sink = AddrSink(addr_tx, Vec::new());
        serve(model, ds, opts, &mut sink).expect("server runs");
    });
    let addr = addr_rx.recv().expect("server address");

    // One line per distinct courier, as in serve_throughput. Since
    // the cache fingerprint is the full request line and plain/traced
    // lines differ, the alternation makes every request an encoder-
    // cache miss — so both arms exercise the complete five-stage
    // pipeline (queue → batch → forward → demux → write), which is
    // exactly the path tracing instruments.
    let lines: Vec<String> = {
        let mut seen = std::collections::HashSet::new();
        dataset
            .test
            .iter()
            .filter(|s| seen.insert(s.query.courier_id))
            .map(|s| serde_json::to_string(&s.query).unwrap())
            .collect()
    };

    // Warm-up pass (tape pools, encoder cache churn), then timed
    // paired passes; each arm keeps its own min total.
    let mut best = [f64::MAX; 2];
    serve_pass(&addr, &lines);
    for _ in 0..REPS {
        let (plain, traced) = serve_pass(&addr, &lines);
        best[0] = best[0].min(plain);
        best[1] = best[1].min(traced);
    }

    let mut s = TcpStream::connect(&addr).unwrap();
    let mut r = BufReader::new(s.try_clone().unwrap());
    s.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
    let mut ack = String::new();
    r.read_line(&mut ack).unwrap();
    server.join().expect("server exits");

    (SERVE_REQUESTS as f64 / best[0], SERVE_REQUESTS as f64 / best[1])
}

fn main() {
    let arms = [Arm::Stripped, Arm::Instrumented, Arm::Traced];
    let mut best = [f64::MAX; 3];
    let mut loss_bits = [0u32; 3];
    // warm-up rep (page cache, allocator) then interleaved timed reps
    for &arm in &arms {
        measure(arm);
    }
    for _ in 0..REPS {
        for (i, &arm) in arms.iter().enumerate() {
            let (secs, bits) = measure(arm);
            best[i] = best[i].min(secs);
            loss_bits[i] = bits;
        }
    }

    let identical = loss_bits.iter().all(|&b| b == loss_bits[0]);
    assert!(identical, "telemetry must be write-only: loss bits diverged {loss_bits:?}");

    let overhead = |i: usize| (best[i] - best[0]) / best[0] * 100.0;
    for (i, &arm) in arms.iter().enumerate() {
        println!(
            "{:<12} min loop {:.3}s  ({:+.2}% vs stripped)",
            arm.label(),
            best[i],
            overhead(i)
        );
    }
    println!("loss bit-identical across arms: {identical}");

    let (untraced_rps, traced_rps) = measure_serve();
    let serve_overhead_pct = (untraced_rps - traced_rps) / untraced_rps * 100.0;
    println!(
        "serve untraced  min-time {untraced_rps:>8.1} req/s\nserve traced    min-time {traced_rps:>8.1} req/s  ({serve_overhead_pct:+.2}% overhead, budget 2%)"
    );

    let entries: Vec<String> = arms
        .iter()
        .enumerate()
        .map(|(i, &arm)| {
            format!(
                "    {{\"arm\": \"{}\", \"min_loop_seconds\": {:.4}, \"overhead_pct_vs_stripped\": {:.3}}}",
                arm.label(),
                best[i],
                overhead(i)
            )
        })
        .collect();
    let serve_rows = format!(
        "    {{\"arm\": \"serve_untraced\", \"requests_per_sec\": {untraced_rps:.3}, \"overhead_pct_vs_untraced\": 0.000}},\n    {{\"arm\": \"serve_traced\", \"requests_per_sec\": {traced_rps:.3}, \"overhead_pct_vs_untraced\": {serve_overhead_pct:.3}}}"
    );
    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"epochs\": {EPOCHS},\n  \"reps\": {REPS},\n  \"serve_requests_per_rep\": {SERVE_REQUESTS},\n  \"loss_bit_identical_across_arms\": {identical},\n  \"rows\": [\n{}\n  ],\n  \"serve_rows\": [\n{serve_rows}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&out).expect("create results dir");
    let path = out.join("obs_overhead.json");
    rtp_obs::fsio::write_atomic_str(&path, &json).expect("write results JSON");
    println!("wrote {}", path.display());
}
