//! Matmul-kernel and tape-reuse micro-benchmarks for the tensor
//! engine's hot loop.
//!
//! Three measurements, written to `results/tensor_kernels.json`:
//!
//! 1. **Kernel sweep** — square-matmul GFLOP-rate of the blocked,
//!    B-packed forward kernel vs the naive reference, both backward
//!    accumulation kernels, and the fast (FMA) and quantized (i8)
//!    inference tiers, at n ∈ {16, 32, 64, 128, 256}.
//! 2. **Tape reuse** — forward+backward throughput of a small MLP-like
//!    program on a fresh `Tape::new()` per iteration vs one pooled
//!    tape reset with `Tape::clear()`, and the pool hit rate showing
//!    how many heap allocations the pool absorbs.
//! 3. **Op profile** — the per-op call/flop/byte counters the tensor
//!    layer publishes to the global metrics registry, accumulated over
//!    a batch of real end-to-end predictions, so the bench records
//!    *where* the model's arithmetic actually goes.

use rtp_bench::{bench_dataset, bench_meta_json, bench_model};
use rtp_tensor::{kernels, GradBuffer, Numerics, ParamStore, QuantizedMatrix, Tape};
use std::time::Instant;

/// Deterministic pseudo-random fill (no rand dependency needed here).
fn fill(v: &mut [f32], mut seed: u32) {
    for x in v.iter_mut() {
        seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
        *x = ((seed >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0;
    }
}

/// Times `f` over enough repetitions to exceed ~80ms, best of three
/// rounds (shields against scheduler noise on the shared core),
/// returns seconds per call.
fn time_per_call(mut f: impl FnMut()) -> f64 {
    // warm-up
    f();
    let mut reps = 1usize;
    let dt = loop {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt > 0.08 {
            break dt;
        }
        reps *= 2;
    };
    let mut best = dt;
    for _ in 0..2 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best / reps as f64
}

struct KernelRow {
    n: usize,
    naive_gflops: f64,
    blocked_gflops: f64,
    grad_a_gflops: f64,
    grad_b_gflops: f64,
    fast_gflops: f64,
    q8_gflops: f64,
    speedup: f64,
}

fn kernel_sweep() -> Vec<KernelRow> {
    [16usize, 32, 64, 128, 256]
        .iter()
        .map(|&n| {
            let mut a = vec![0.0f32; n * n];
            let mut b = vec![0.0f32; n * n];
            let mut out = vec![0.0f32; n * n];
            let mut acc = vec![0.0f32; n * n];
            fill(&mut a, 1 + n as u32);
            fill(&mut b, 2 + n as u32);
            let flops = 2.0 * (n as f64).powi(3);
            let qb = QuantizedMatrix::from_weights(&b, n, n);

            let naive = time_per_call(|| kernels::matmul_naive(&a, &b, &mut out, n, n, n));
            let blocked = time_per_call(|| kernels::matmul(&a, &b, &mut out, n, n, n));
            let fast = time_per_call(|| kernels::matmul_fast(&a, &b, &mut out, n, n, n));
            let q8 = time_per_call(|| rtp_tensor::simd::matmul_q8(&a, &qb, &mut out, n, n, n));
            let grad_a = time_per_call(|| {
                acc.iter_mut().for_each(|x| *x = 0.0);
                kernels::matmul_grad_a(&a, &b, &mut acc, n, n, n);
            });
            let grad_b = time_per_call(|| {
                acc.iter_mut().for_each(|x| *x = 0.0);
                kernels::matmul_grad_b(&a, &b, &mut acc, n, n, n);
            });
            let row = KernelRow {
                n,
                naive_gflops: flops / naive / 1e9,
                blocked_gflops: flops / blocked / 1e9,
                grad_a_gflops: flops / grad_a / 1e9,
                grad_b_gflops: flops / grad_b / 1e9,
                fast_gflops: flops / fast / 1e9,
                q8_gflops: flops / q8 / 1e9,
                speedup: naive / blocked,
            };
            println!(
                "n={:>3}: naive {:>6.2} GF/s  blocked {:>6.2} GF/s  ({:.2}x)  fast {:>6.2}  q8 {:>6.2}  gA {:>6.2}  gB {:>6.2}",
                row.n, row.naive_gflops, row.blocked_gflops, row.speedup, row.fast_gflops,
                row.q8_gflops, row.grad_a_gflops, row.grad_b_gflops
            );
            row
        })
        .collect()
}

/// Runs a batch of real predictions on a fresh inference tape and
/// returns the `tensor.*` counter deltas from the global registry as
/// formatted JSON lines. This is the per-op profile: calls, flops and
/// bytes for gather/softmax/add_outer/LSTM plus matmul kernel calls.
fn op_profile() -> (usize, Vec<String>) {
    let dataset = bench_dataset();
    let model = bench_model(&dataset);
    let before = rtp_obs::metrics::global().snapshot();
    let mut tape = model.inference_tape(Numerics::Exact);
    let queries = dataset.test.len().min(32);
    for s in dataset.test.iter().take(queries) {
        let courier = &dataset.couriers[s.query.courier_id];
        let g = model.build_graph(&dataset.city, courier, &s.query);
        model.predict_into(&mut tape, &g);
    }
    let after = rtp_obs::metrics::global().snapshot();
    let lines: Vec<String> = after
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("tensor."))
        .filter_map(|(name, &v)| {
            let delta = v - before.counters.get(name).copied().unwrap_or(0);
            (delta > 0).then(|| format!("    \"{name}\": {delta}"))
        })
        .collect();
    for l in &lines {
        println!("{}", l.trim_start());
    }
    (queries, lines)
}

/// One forward+backward pass of a tanh MLP; sized small enough that
/// buffer allocation is a visible share of the pass (the regime the
/// per-sample training loop actually runs in: graphs are ~10-40 nodes).
const MLP_DIM: usize = 24;
const MLP_LAYERS: usize = 6;

fn mlp_pass(t: &mut Tape, store: &ParamStore, ids: &[rtp_tensor::ParamId], buf: &mut GradBuffer) {
    let mut x = t.constant(MLP_DIM, MLP_DIM, vec![0.5; MLP_DIM * MLP_DIM]);
    for &w in ids {
        let wv = t.param(store, w);
        let h = t.matmul(x, wv);
        x = t.tanh(h);
    }
    let loss = t.mean_all(x);
    t.backward_into(loss, buf);
}

struct ReuseResult {
    fresh_passes_per_sec: f64,
    reused_passes_per_sec: f64,
    speedup: f64,
    pool_hits: u64,
    pool_misses: u64,
}

fn tape_reuse() -> ReuseResult {
    let mut store = ParamStore::new(11);
    let ids: Vec<_> = (0..MLP_LAYERS as u32)
        .map(|l| {
            let mut w = vec![0.0f32; MLP_DIM * MLP_DIM];
            fill(&mut w, 77 + l);
            store.add_param(&format!("w{l}"), MLP_DIM, MLP_DIM, w)
        })
        .collect();
    let mut buf = GradBuffer::zeros_like(&store);

    let fresh_spc = time_per_call(|| {
        let mut t = Tape::new();
        mlp_pass(&mut t, &store, &ids, &mut buf);
    });

    let mut pooled = Tape::new();
    // Warm the pool once, then reset stats-relevant measurement phase:
    mlp_pass(&mut pooled, &store, &ids, &mut buf);
    let reused_spc = time_per_call(|| {
        pooled.clear();
        mlp_pass(&mut pooled, &store, &ids, &mut buf);
    });
    let (pool_hits, pool_misses) = pooled.pool_stats();

    let r = ReuseResult {
        fresh_passes_per_sec: 1.0 / fresh_spc,
        reused_passes_per_sec: 1.0 / reused_spc,
        speedup: fresh_spc / reused_spc,
        pool_hits,
        pool_misses,
    };
    println!(
        "tape fresh {:>8.1} passes/s   pooled {:>8.1} passes/s   ({:.2}x)   pool {}h/{}m",
        r.fresh_passes_per_sec, r.reused_passes_per_sec, r.speedup, r.pool_hits, r.pool_misses
    );
    r
}

fn main() {
    println!("== matmul kernel sweep ==");
    let rows = kernel_sweep();
    println!("== tape reuse ==");
    let reuse = tape_reuse();
    println!("== op profile ==");
    let (profile_queries, profile_lines) = op_profile();

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"n\": {}, \"naive_gflops\": {:.3}, \"blocked_gflops\": {:.3}, \"speedup\": {:.3}, \"grad_a_gflops\": {:.3}, \"grad_b_gflops\": {:.3}, \"fast_gflops\": {:.3}, \"q8_gflops\": {:.3}}}",
                r.n, r.naive_gflops, r.blocked_gflops, r.speedup, r.grad_a_gflops,
                r.grad_b_gflops, r.fast_gflops, r.q8_gflops
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"tensor_kernels\",\n  \"bench_meta\": {},\n  \"matmul_sweep\": [\n{}\n  ],\n  \"tape_reuse\": {{\n    \"fresh_passes_per_sec\": {:.1},\n    \"reused_passes_per_sec\": {:.1},\n    \"speedup\": {:.3},\n    \"pool_hits\": {},\n    \"pool_misses\": {},\n    \"pool_hit_rate\": {:.4}\n  }},\n  \"op_profile\": {{\n    \"queries\": {profile_queries},\n{}\n  }}\n}}\n",
        bench_meta_json(),
        entries.join(",\n"),
        reuse.fresh_passes_per_sec,
        reuse.reused_passes_per_sec,
        reuse.speedup,
        reuse.pool_hits,
        reuse.pool_misses,
        reuse.pool_hits as f64 / (reuse.pool_hits + reuse.pool_misses).max(1) as f64,
        profile_lines.join(",\n"),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&out).expect("create results dir");
    let path = out.join("tensor_kernels.json");
    rtp_obs::fsio::write_atomic_str(&path, &json).expect("write results JSON");
    println!("wrote {}", path.display());
}
