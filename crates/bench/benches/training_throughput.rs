//! Data-parallel training throughput: samples/sec of the M²G4RTP
//! mini-batch loop at 1, 2 and N worker threads (N = all cores).
//!
//! Measures [`TrainReport::train_loop_seconds`] — the forward/backward
//! shard loop plus the ordered gradient reduction and optimizer step —
//! so dataset preparation and validation passes do not dilute the
//! scaling number. Also measures the wall-clock overhead of per-epoch
//! durable checkpointing (target: < 5% at quick scale). Writes
//! `results/training_throughput.json`.

use m2g4rtp::{CheckpointOptions, M2G4Rtp, ModelConfig, TrainConfig, TrainReport, Trainer};
use rtp_bench::bench_dataset;
use rtp_tensor::parallel::resolve_threads;

const EPOCHS: usize = 2;

struct Row {
    threads: usize,
    samples_per_sec: f64,
    loop_seconds: f64,
    final_loss_bits: u32,
}

fn train(threads: usize, ckpt: Option<&CheckpointOptions>) -> TrainReport {
    let dataset = bench_dataset();
    let mut model = M2G4Rtp::new(ModelConfig::for_dataset(&dataset), 7);
    let cfg = TrainConfig { epochs: EPOCHS, patience: usize::MAX, threads, ..TrainConfig::quick() };
    Trainer::new(cfg).fit_with_checkpoints(&mut model, &dataset, ckpt).expect("training failed")
}

fn measure(threads: usize) -> Row {
    let dataset = bench_dataset();
    let report = train(threads, None);
    let samples = (report.epochs_run * dataset.train.len()) as f64;
    Row {
        threads,
        samples_per_sec: samples / report.train_loop_seconds.max(1e-9),
        loop_seconds: report.train_loop_seconds,
        final_loss_bits: report
            .history
            .last()
            .expect("ran at least one epoch")
            .train_loss
            .to_bits(),
    }
}

/// Per-epoch checkpoint overhead as a fraction of the uncheckpointed
/// wall clock, at a fixed thread count.
fn measure_checkpoint_overhead() -> (f64, f64, f64) {
    let plain = train(1, None).train_seconds;
    let dir = std::env::temp_dir().join(format!("rtp-bench-ckpt-{}", std::process::id()));
    let checkpointed = train(1, Some(&CheckpointOptions::new(&dir))).train_seconds;
    std::fs::remove_dir_all(&dir).ok();
    ((checkpointed - plain).max(0.0) / plain.max(1e-9), plain, checkpointed)
}

fn main() {
    let cores = resolve_threads(0);
    let mut settings = vec![1usize, 2, cores];
    settings.sort_unstable();
    settings.dedup();

    let rows: Vec<Row> = settings.iter().map(|&t| measure(t)).collect();
    let base = rows[0].samples_per_sec;
    for r in &rows {
        println!(
            "threads {:>2}: {:>8.2} samples/sec  ({:.2}x vs 1 thread, loop {:.2}s)",
            r.threads,
            r.samples_per_sec,
            r.samples_per_sec / base,
            r.loop_seconds
        );
    }
    let identical = rows.iter().all(|r| r.final_loss_bits == rows[0].final_loss_bits);
    println!("final-epoch loss bit-identical across thread counts: {identical}");

    let (overhead_frac, plain_s, ckpt_s) = measure_checkpoint_overhead();
    println!(
        "checkpointing overhead: {:.1}% wall clock ({plain_s:.2}s plain vs {ckpt_s:.2}s checkpointed, {EPOCHS} epochs)",
        overhead_frac * 100.0
    );

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"samples_per_sec\": {:.3}, \"loop_seconds\": {:.4}, \"speedup_vs_1\": {:.3}}}",
                r.threads,
                r.samples_per_sec,
                r.loop_seconds,
                r.samples_per_sec / base
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"training_throughput\",\n  \"bench_meta\": {},\n  \"epochs\": {EPOCHS},\n  \"cores_available\": {cores},\n  \"loss_bit_identical_across_threads\": {identical},\n  \"checkpoint_overhead_frac\": {overhead_frac:.4},\n  \"train_seconds_plain\": {plain_s:.4},\n  \"train_seconds_checkpointed\": {ckpt_s:.4},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rtp_bench::bench_meta_json(),
        entries.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&out).expect("create results dir");
    let path = out.join("training_throughput.json");
    rtp_obs::fsio::write_atomic_str(&path, &json).expect("write results JSON");
    println!("wrote {}", path.display());
}
