//! Throughput of the data substrate: city generation, courier-behaviour
//! simulation and multi-level graph construction.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtp_graph::{GraphBuilder, GraphConfig};
use rtp_sim::{BehaviorConfig, BehaviorSim, City, CityConfig, DatasetBuilder, DatasetConfig};
use std::time::Duration;

fn bench_city_generation(c: &mut Criterion) {
    let cfg = CityConfig::default();
    c.bench_function("city_generate_320_aois", |b| {
        b.iter(|| std::hint::black_box(City::generate(&cfg)))
    });
}

fn bench_behavior_sim(c: &mut Criterion) {
    let d = DatasetBuilder::new(DatasetConfig::tiny(9)).build();
    let sim = BehaviorSim::new(&d.city, BehaviorConfig::default());
    let s = &d.train[0];
    let courier = &d.couriers[s.query.courier_id];
    c.bench_function("behavior_simulate_one_route", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(sim.simulate(&s.query, courier, &mut rng))
        })
    });
}

fn bench_graph_build(c: &mut Criterion) {
    let d = DatasetBuilder::new(DatasetConfig::tiny(9)).build();
    let builder = GraphBuilder::new(GraphConfig::default());
    let s = &d.train[0];
    let courier = &d.couriers[s.query.courier_id];
    c.bench_function("multi_level_graph_build", |b| {
        b.iter(|| std::hint::black_box(builder.build(&s.query, &d.city, courier)))
    });
}

fn bench_dataset_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_build");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("tiny", |b| {
        b.iter(|| std::hint::black_box(DatasetBuilder::new(DatasetConfig::tiny(3)).build()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_city_generation, bench_behavior_sim, bench_graph_build, bench_dataset_build
}
criterion_main!(benches);
