//! GAT-e encoder forward cost as a function of the number of location
//! nodes — the N²F² term of the paper's Table V complexity analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use m2g4rtp::{EdgeEmbedder, GatEncoder, NodeEmbedder};
use rtp_graph::{GraphBuilder, GraphConfig, LevelGraph, MultiLevelGraph};
use rtp_sim::{City, CityConfig, Order, Point, RtpQuery, Weather};
use rtp_tensor::{ParamStore, Tape};
use std::time::Duration;

/// Builds a synthetic query with exactly `n` locations.
fn query_with_n(city: &City, n: usize) -> (RtpQuery, MultiLevelGraph, rtp_sim::Courier) {
    let couriers = city.generate_couriers(1, 12, 7);
    let courier = couriers[0].clone();
    let mut orders = Vec::new();
    for i in 0..n {
        let aoi = city.aoi(courier.territory[i % courier.territory.len()]);
        orders.push(Order {
            pos: Point { x: aoi.center.x + (i as f32) * 0.01, y: aoi.center.y },
            aoi_id: aoi.id,
            deadline: 600.0 + i as f32 * 7.0,
            accept_time: 500.0,
        });
    }
    let query = RtpQuery {
        courier_id: 0,
        time: 540.0,
        courier_pos: city.aoi(courier.territory[0]).center,
        orders,
        weather: Weather::Sunny,
        weekday: 3,
    };
    let g = GraphBuilder::new(GraphConfig::default()).build(&query, city, &courier);
    (query, g, courier)
}

fn bench_encoder(c: &mut Criterion) {
    let city = City::generate(&CityConfig { n_aois: 64, ..CityConfig::default() });
    let mut store = ParamStore::new(1);
    let d = 32;
    let node_emb = NodeEmbedder::new(&mut store, "n", 5, 4, 65, 2, 8, d);
    let edge_emb = EdgeEmbedder::new(&mut store, "e", 3, d);
    let encoder = GatEncoder::new(&mut store, "enc", d, 4, 2, 0.2);

    let mut group = c.benchmark_group("gat_e_forward");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [5usize, 10, 20, 40] {
        let (_, g, _) = query_with_n(&city, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut t = Tape::new();
                let x = node_emb.embed(&mut t, &store, &g.locations, &g.global);
                let z = edge_emb.embed(&mut t, &store, &g.locations);
                std::hint::black_box(encoder.forward(&mut t, &store, x, z, &g.locations.adj))
            })
        });
    }
    group.finish();

    // graph construction scaling for context
    let mut group = c.benchmark_group("graph_construction");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [5usize, 20, 40] {
        let (query, _, courier) = query_with_n(&city, n);
        let builder = GraphBuilder::new(GraphConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &query, |b, q| {
            b.iter(|| std::hint::black_box(builder.build(q, &city, &courier)))
        });
    }
    group.finish();
}

/// Keep the unused LevelGraph import honest (dims used in docs).
#[allow(dead_code)]
fn _type_witness(_: &LevelGraph) {}

criterion_group!(benches, bench_encoder);
criterion_main!(benches);
