//! Serve-layer throughput: requests/s of the NDJSON TCP server at 1
//! worker vs all-core workers, each measured with micro-batching off
//! and on, with concurrent closed-loop clients — plus the `--numerics
//! fast` and `--numerics quantized` tiers at each worker count so the
//! latency win of approximate inference is a recorded number, not a
//! claim.
//!
//! Each arm starts a real server on an ephemeral port, drives it with
//! `CLIENTS` threads doing request/reply round trips, and reads
//! p50/p99 handle latency plus the encoder-cache hit rate from the
//! in-band `{"cmd":"stats"}` snapshot (the same histogram the
//! `latency_ms` response field feeds). Every arm serves the *same*
//! trained weights (one training run, replayed via `SavedModel`), so
//! tier-to-tier deltas are pure numerics effects. Writes
//! `results/serve_throughput.json`.
//!
//! The client workload repeats one query line per distinct courier, so
//! the batched arms exercise the serve path the way a courier app does:
//! a courier's route state is encoded once cold, then repeat polls of
//! the same state replay the cached encoder activations through the
//! decoders only. The reported `cache_hit_rate` makes the repeat share
//! of the workload explicit.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use m2g4rtp::M2G4Rtp;
use rtp_bench::{bench_dataset, bench_meta_json, bench_model};
use rtp_cli::serve::{serve, ServeOptions, StatsReply};
use rtp_sim::Dataset;
use rtp_tensor::parallel::resolve_threads;
use rtp_tensor::Numerics;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 50;
/// Batched arms: `--batch-max 8 --batch-window-us 1000`.
const BATCH_MAX: usize = 8;
const BATCH_WINDOW_US: u64 = 1000;

struct Row {
    workers: usize,
    batch_max: usize,
    numerics: Numerics,
    requests: usize,
    requests_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    cache_hit_rate: f64,
    /// Open idle sockets parked on the server for the whole timed
    /// window (the soak arms; 0 everywhere else).
    idle_conns: usize,
    /// Process thread-count delta from opening those sockets — the
    /// evented front end's contract is that this is zero.
    idle_threads_delta: i64,
}

/// Current thread count of this process (`/proc/self/status`).
fn process_threads() -> i64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| s.lines().find_map(|l| l.strip_prefix("Threads:")?.trim().parse().ok()))
        .unwrap_or(0)
}

/// Soft `RLIMIT_NOFILE` cap (`/proc/self/limits`), so the soak arm
/// sizes itself instead of dying on EMFILE on constrained runners.
fn max_open_files() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            let line = s.lines().find(|l| l.starts_with("Max open files"))?;
            let soft = line.split_whitespace().nth(3)?;
            if soft == "unlimited" {
                Some(1 << 20)
            } else {
                soft.parse().ok()
            }
        })
        .unwrap_or(1024)
}

fn measure(
    workers: usize,
    batch_max: usize,
    numerics: Numerics,
    model: M2G4Rtp,
    dataset: &Dataset,
    idle_conns: usize,
) -> Row {
    let (addr_tx, addr_rx) = channel::<String>();
    struct AddrSink(std::sync::mpsc::Sender<String>, Vec<u8>);
    impl Write for AddrSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.1.extend_from_slice(buf);
            while let Some(pos) = self.1.iter().position(|&b| b == b'\n') {
                if let Some(addr) =
                    String::from_utf8_lossy(&self.1[..pos]).strip_prefix("listening on ")
                {
                    let _ = self.0.send(addr.to_string());
                }
                self.1.drain(..=pos);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let ds = dataset.clone();
    let opts = ServeOptions {
        workers,
        allow_shutdown: true,
        batch_max,
        batch_window: Duration::from_micros(BATCH_WINDOW_US),
        numerics,
        ..Default::default()
    };
    let server = std::thread::spawn(move || {
        let mut sink = AddrSink(addr_tx, Vec::new());
        serve(model, ds, opts, &mut sink).expect("server runs");
    });
    let addr = addr_rx.recv().expect("server address");

    // One query line per distinct courier: the deployed workload shape
    // is each courier's app polling its *current* route state, so
    // repeat requests for a courier carry the same line (cacheable)
    // until the route actually changes. Two lines for one courier would
    // instead model a courier flip-flopping between route states and
    // just thrash the per-courier cache slot.
    let lines: Vec<String> = {
        let mut seen = std::collections::HashSet::new();
        dataset
            .test
            .iter()
            .filter(|s| seen.insert(s.query.courier_id))
            .map(|s| serde_json::to_string(&s.query).unwrap())
            .collect()
    };

    // warm every worker's tape pool before timing
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_nodelay(true).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        for line in lines.iter().take(4) {
            s.write_all(format!("{line}\n").as_bytes()).unwrap();
            let mut reply = String::new();
            r.read_line(&mut reply).unwrap();
        }
    }

    // Soak arms: park a herd of idle sockets on the reactor before the
    // timed window. They never send a byte; the contract under test is
    // that they cost no threads and no hot-path throughput.
    let threads_before = process_threads();
    let mut parked = Vec::with_capacity(idle_conns);
    for _ in 0..idle_conns {
        parked.push(TcpStream::connect(&addr).expect("idle connect"));
    }
    let idle_threads_delta = process_threads() - threads_before;

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = &addr;
            let lines = &lines;
            scope.spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_nodelay(true).unwrap();
                let mut r = BufReader::new(s.try_clone().unwrap());
                for k in 0..REQUESTS_PER_CLIENT {
                    let line = &lines[(c * REQUESTS_PER_CLIENT + k) % lines.len()];
                    s.write_all(format!("{line}\n").as_bytes()).unwrap();
                    let mut reply = String::new();
                    r.read_line(&mut reply).unwrap();
                    assert!(!reply.contains("\"error\""), "bench request failed: {reply}");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let mut s = TcpStream::connect(&addr).unwrap();
    let mut r = BufReader::new(s.try_clone().unwrap());
    s.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
    let mut reply = String::new();
    r.read_line(&mut reply).unwrap();
    let stats: StatsReply = serde_json::from_str(&reply).expect("stats reply parses");
    let lat = &stats.histograms["serve.latency_us"];
    let cache_hit_rate = stats.gauges.get("serve.cache.hit_rate").copied().unwrap_or(0.0);
    s.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
    let mut ack = String::new();
    r.read_line(&mut ack).unwrap();
    drop(parked);
    server.join().expect("server exits");

    let requests = CLIENTS * REQUESTS_PER_CLIENT;
    Row {
        workers,
        batch_max,
        numerics,
        requests,
        requests_per_sec: requests as f64 / elapsed,
        p50_us: lat.p50,
        p99_us: lat.p99,
        cache_hit_rate,
        idle_conns,
        idle_threads_delta,
    }
}

fn main() {
    let cores = resolve_threads(0);
    let dataset = bench_dataset();
    // One training run shared by every arm: the tier columns then
    // differ only in kernel numerics, never in weights.
    let saved = bench_model(&dataset).to_saved();
    let load = || M2G4Rtp::from_saved(saved.clone());
    // Measure 2 workers even on a 1-core box (recorded honestly via
    // cores_available, as in training_throughput).
    let mut settings = vec![1usize, 2, cores];
    settings.sort_unstable();
    settings.dedup();

    // Each worker count gets an unbatched arm (batch_max 1: the legacy
    // per-worker path), a batched arm (micro-batching + encoder cache)
    // and the two approximate-numerics arms (unbatched, so the tier
    // delta is not confounded with cache effects).
    let mut rows: Vec<(Row, f64)> = Vec::new(); // (row, speedup vs exact unbatched same workers)
    for &w in &settings {
        let off = measure(w, 1, Numerics::Exact, load(), &dataset, 0);
        let on = measure(w, BATCH_MAX, Numerics::Exact, load(), &dataset, 0);
        let fast = measure(w, 1, Numerics::Fast, load(), &dataset, 0);
        let quant = measure(w, 1, Numerics::Quantized, load(), &dataset, 0);
        let base_off = off.requests_per_sec;
        println!(
            "workers {:>2} unbatched: {:>8.1} req/s  (p50 {:.3} ms, p99 {:.3} ms)",
            off.workers,
            off.requests_per_sec,
            off.p50_us as f64 / 1000.0,
            off.p99_us as f64 / 1000.0
        );
        println!(
            "workers {:>2} batch={:>2}: {:>8.1} req/s  ({:.2}x vs unbatched same workers, cache hit rate {:.1}%, p50 {:.3} ms, p99 {:.3} ms)",
            on.workers,
            on.batch_max,
            on.requests_per_sec,
            on.requests_per_sec / base_off,
            on.cache_hit_rate * 100.0,
            on.p50_us as f64 / 1000.0,
            on.p99_us as f64 / 1000.0
        );
        for r in [&fast, &quant] {
            println!(
                "workers {:>2} {:>9}: {:>8.1} req/s  ({:.2}x vs exact unbatched, p50 {:.3} ms, p99 {:.3} ms)",
                r.workers,
                r.numerics.as_str(),
                r.requests_per_sec,
                r.requests_per_sec / base_off,
                r.p50_us as f64 / 1000.0,
                r.p99_us as f64 / 1000.0
            );
        }
        let on_speedup = on.requests_per_sec / base_off;
        let fast_speedup = fast.requests_per_sec / base_off;
        let quant_speedup = quant.requests_per_sec / base_off;
        rows.push((off, 1.0));
        rows.push((on, on_speedup));
        rows.push((fast, fast_speedup));
        rows.push((quant, quant_speedup));
    }

    // Idle-connection soak: the same 1-worker unbatched arm, measured
    // back-to-back with and without 1k+ parked idle sockets. The pair
    // is the honest before/after — the ratio is the throughput cost of
    // an idle herd on the epoll front end (contract: ~none), and
    // idle_threads_delta records that the herd consumed no threads.
    // Sized off RLIMIT_NOFILE (2 fds per in-process connection) so a
    // constrained runner soaks what it can instead of dying on EMFILE.
    let soak_n = ((max_open_files().saturating_sub(256)) / 2).min(1500);
    let soak_base = measure(1, 1, Numerics::Exact, load(), &dataset, 0);
    let soak = measure(1, 1, Numerics::Exact, load(), &dataset, soak_n);
    println!(
        "idle soak: {:>8.1} req/s with {} idle conns vs {:>8.1} req/s with none ({:.2}x, {} extra thread(s))",
        soak.requests_per_sec,
        soak.idle_conns,
        soak_base.requests_per_sec,
        soak.requests_per_sec / soak_base.requests_per_sec,
        soak.idle_threads_delta
    );
    let soak_ratio = soak.requests_per_sec / soak_base.requests_per_sec;
    rows.push((soak_base, 1.0));
    rows.push((soak, soak_ratio));

    let base = rows[0].0.requests_per_sec;
    let entries: Vec<String> = rows
        .iter()
        .map(|(r, speedup_vs_unbatched)| {
            format!(
                "    {{\"workers\": {}, \"batch_max\": {}, \"numerics\": \"{}\", \"requests\": {}, \"requests_per_sec\": {:.3}, \"speedup_vs_1\": {:.3}, \"speedup_vs_unbatched\": {:.3}, \"cache_hit_rate\": {:.4}, \"p50_us\": {}, \"p99_us\": {}, \"idle_conns\": {}, \"idle_threads_delta\": {}}}",
                r.workers,
                r.batch_max,
                r.numerics.as_str(),
                r.requests,
                r.requests_per_sec,
                r.requests_per_sec / base,
                speedup_vs_unbatched,
                r.cache_hit_rate,
                r.p50_us,
                r.p99_us,
                r.idle_conns,
                r.idle_threads_delta
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"bench_meta\": {},\n  \"clients\": {CLIENTS},\n  \"requests_per_client\": {REQUESTS_PER_CLIENT},\n  \"batch_window_us\": {BATCH_WINDOW_US},\n  \"cores_available\": {cores},\n  \"rows\": [\n{}\n  ]\n}}\n",
        bench_meta_json(),
        entries.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&out).expect("create results dir");
    let path = out.join("serve_throughput.json");
    rtp_obs::fsio::write_atomic_str(&path, &json).expect("write results JSON");
    println!("wrote {}", path.display());
}
