//! Serve-layer throughput: requests/s of the NDJSON TCP server at 1
//! worker vs all-core workers, each measured with micro-batching off
//! and on, with concurrent closed-loop clients — plus the `--numerics
//! fast` and `--numerics quantized` tiers at each worker count so the
//! latency win of approximate inference is a recorded number, not a
//! claim.
//!
//! Each arm starts a real server on an ephemeral port, drives it with
//! `CLIENTS` threads doing request/reply round trips, and reads
//! p50/p99 handle latency plus the encoder-cache hit rate from the
//! in-band `{"cmd":"stats"}` snapshot (the same histogram the
//! `latency_ms` response field feeds). Every arm serves the *same*
//! trained weights (one training run, replayed via `SavedModel`), so
//! tier-to-tier deltas are pure numerics effects. Writes
//! `results/serve_throughput.json`.
//!
//! The client workload repeats one query line per distinct courier, so
//! the batched arms exercise the serve path the way a courier app does:
//! a courier's route state is encoded once cold, then repeat polls of
//! the same state replay the cached encoder activations through the
//! decoders only. The reported `cache_hit_rate` makes the repeat share
//! of the workload explicit.
//!
//! The hot-swap pair shares **one** server and **one** timed window,
//! split into alternating quiet/swap segments: each swap segment opens
//! with an identity `{"cmd":"reload"}` hot-swap, and completed
//! requests are counted per segment. Comparing quiet vs swap segments
//! measured seconds apart on the same server cancels the ambient
//! scheduler noise of a shared runner (whole back-to-back windows have
//! been observed to swing 2–6x for reasons that have nothing to do
//! with the server), so the pair's ratio isolates the true cost of a
//! production swap cadence: the reload's own CPU plus every distinct
//! query re-encoding once against the drained encoder cache. The ratio
//! is recorded as the swap row's `speedup_vs_unbatched` and enforced
//! by `perf_gate swap`. `--swap-only` runs just that pair (the CI perf
//! job's swap gate).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use m2g4rtp::M2G4Rtp;
use rtp_bench::{bench_dataset, bench_meta_json, bench_model};
use rtp_cli::serve::{serve, ServeOptions, StatsReply};
use rtp_sim::Dataset;
use rtp_tensor::parallel::resolve_threads;
use rtp_tensor::Numerics;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 50;
/// Batched arms: `--batch-max 8 --batch-window-us 1000`.
const BATCH_MAX: usize = 8;
const BATCH_WINDOW_US: u64 = 1000;
/// Length of one quiet or swap segment of the hot-swap pair. One swap
/// per 10 s is already a hotter cadence than the online-training loop
/// (which retrains for seconds to minutes between pushes), so holding
/// the 5% gate at this pacing covers production with margin. The
/// reload itself costs a fixed ~100-200 ms of single-core CPU (parse +
/// validate + cache re-warm); the segment must be long enough that the
/// gate measures steady swapping cost, not that fixed cost divided by
/// an arbitrarily short window.
const SWAP_SEGMENT: Duration = Duration::from_secs(10);
/// Total alternating segments of the hot-swap pair (half quiet, half
/// swap, interleaved so both phases see the same ambient load).
const SWAP_SEGMENTS: usize = 8;

struct Row {
    workers: usize,
    batch_max: usize,
    numerics: Numerics,
    requests: usize,
    requests_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    cache_hit_rate: f64,
    /// Open idle sockets parked on the server for the whole timed
    /// window (the soak arms; 0 everywhere else).
    idle_conns: usize,
    /// Process thread-count delta from opening those sockets — the
    /// evented front end's contract is that this is zero.
    idle_threads_delta: i64,
    /// Identity hot-swaps performed during the timed window (the swap
    /// arm; 0 everywhere else).
    reloads: usize,
}

/// Current thread count of this process (`/proc/self/status`).
fn process_threads() -> i64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| s.lines().find_map(|l| l.strip_prefix("Threads:")?.trim().parse().ok()))
        .unwrap_or(0)
}

/// Soft `RLIMIT_NOFILE` cap (`/proc/self/limits`), so the soak arm
/// sizes itself instead of dying on EMFILE on constrained runners.
fn max_open_files() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            let line = s.lines().find(|l| l.starts_with("Max open files"))?;
            let soft = line.split_whitespace().nth(3)?;
            if soft == "unlimited" {
                Some(1 << 20)
            } else {
                soft.parse().ok()
            }
        })
        .unwrap_or(1024)
}

/// Captures the server's `listening on <addr>` line off its output
/// stream and forwards the address to the bench thread.
struct AddrSink(std::sync::mpsc::Sender<String>, Vec<u8>);

impl Write for AddrSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.1.extend_from_slice(buf);
        while let Some(pos) = self.1.iter().position(|&b| b == b'\n') {
            if let Some(addr) =
                String::from_utf8_lossy(&self.1[..pos]).strip_prefix("listening on ")
            {
                let _ = self.0.send(addr.to_string());
            }
            self.1.drain(..=pos);
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Starts a server thread and returns its bound address and handle.
fn start_server(
    workers: usize,
    batch_max: usize,
    numerics: Numerics,
    model: M2G4Rtp,
    dataset: &Dataset,
) -> (String, std::thread::JoinHandle<()>) {
    let (addr_tx, addr_rx) = channel::<String>();
    let ds = dataset.clone();
    let opts = ServeOptions {
        workers,
        allow_shutdown: true,
        batch_max,
        batch_window: Duration::from_micros(BATCH_WINDOW_US),
        numerics,
        ..Default::default()
    };
    let server = std::thread::spawn(move || {
        let mut sink = AddrSink(addr_tx, Vec::new());
        serve(model, ds, opts, &mut sink).expect("server runs");
    });
    let addr = addr_rx.recv().expect("server address");
    (addr, server)
}

/// One query line per distinct courier: the deployed workload shape
/// is each courier's app polling its *current* route state, so
/// repeat requests for a courier carry the same line (cacheable)
/// until the route actually changes. Two lines for one courier would
/// instead model a courier flip-flopping between route states and
/// just thrash the per-courier cache slot.
fn query_lines(dataset: &Dataset) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    dataset
        .test
        .iter()
        .filter(|s| seen.insert(s.query.courier_id))
        .map(|s| serde_json::to_string(&s.query).unwrap())
        .collect()
}

/// Warms every worker's tape pool before the timed window.
fn warm_server(addr: &str, lines: &[String]) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    let mut r = BufReader::new(s.try_clone().unwrap());
    for line in lines.iter().take(4) {
        s.write_all(format!("{line}\n").as_bytes()).unwrap();
        let mut reply = String::new();
        r.read_line(&mut reply).unwrap();
    }
}

/// Fetches the end-of-window stats snapshot and asks the server to
/// shut down; returns `(p50_us, p99_us, cache_hit_rate)`. The caller
/// still joins the server thread (after dropping any parked sockets).
fn stats_and_stop(addr: &str) -> (u64, u64, f64) {
    let mut s = TcpStream::connect(addr).unwrap();
    let mut r = BufReader::new(s.try_clone().unwrap());
    s.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
    let mut reply = String::new();
    r.read_line(&mut reply).unwrap();
    let stats: StatsReply = serde_json::from_str(&reply).expect("stats reply parses");
    let lat = &stats.histograms["serve.latency_us"];
    let cache_hit_rate = stats.gauges.get("serve.cache.hit_rate").copied().unwrap_or(0.0);
    s.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
    let mut ack = String::new();
    r.read_line(&mut ack).unwrap();
    (lat.p50, lat.p99, cache_hit_rate)
}

fn measure(
    workers: usize,
    batch_max: usize,
    numerics: Numerics,
    model: M2G4Rtp,
    dataset: &Dataset,
    idle_conns: usize,
) -> Row {
    let (addr, server) = start_server(workers, batch_max, numerics, model, dataset);
    let lines = query_lines(dataset);
    warm_server(&addr, &lines);

    // Soak arms: park a herd of idle sockets on the reactor before the
    // timed window. They never send a byte; the contract under test is
    // that they cost no threads and no hot-path throughput.
    let threads_before = process_threads();
    let mut parked = Vec::with_capacity(idle_conns);
    for _ in 0..idle_conns {
        parked.push(TcpStream::connect(&addr).expect("idle connect"));
    }
    let idle_threads_delta = process_threads() - threads_before;

    let t0 = Instant::now();
    std::thread::scope(|clients| {
        for c in 0..CLIENTS {
            let addr = &addr;
            let lines = &lines;
            clients.spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_nodelay(true).unwrap();
                let mut r = BufReader::new(s.try_clone().unwrap());
                for k in 0..REQUESTS_PER_CLIENT {
                    let line = &lines[(c * REQUESTS_PER_CLIENT + k) % lines.len()];
                    s.write_all(format!("{line}\n").as_bytes()).unwrap();
                    let mut reply = String::new();
                    r.read_line(&mut reply).unwrap();
                    assert!(!reply.contains("\"error\""), "bench request failed: {reply}");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let (p50_us, p99_us, cache_hit_rate) = stats_and_stop(&addr);
    drop(parked);
    server.join().expect("server exits");

    let requests = CLIENTS * REQUESTS_PER_CLIENT;
    Row {
        workers,
        batch_max,
        numerics,
        requests,
        requests_per_sec: requests as f64 / elapsed,
        p50_us,
        p99_us,
        cache_hit_rate,
        idle_conns,
        idle_threads_delta,
        reloads: 0,
    }
}

/// The hot-swap pair: one server, one window of `SWAP_SEGMENTS`
/// alternating quiet/swap segments, returning `(quiet_row, swap_row)`
/// built from per-phase request counts. Clients run free (no request
/// budget) until every segment has elapsed; an operator connection
/// opens each swap segment with one identity hot-swap, so the swap
/// phase carries the reload's CPU, the post-swap cache re-warm, and
/// any hot-path cost of the generation change, while the interleaved
/// quiet phase pins down what the same box serves seconds away from a
/// swap.
fn measure_swap_pair(
    workers: usize,
    model: M2G4Rtp,
    dataset: &Dataset,
    reload_path: &str,
) -> (Row, Row) {
    let (addr, server) = start_server(workers, BATCH_MAX, Numerics::Exact, model, dataset);
    let lines = query_lines(dataset);
    warm_server(&addr, &lines);

    let done = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    // (requests, seconds) aggregated per phase across its segments.
    let mut quiet = (0u64, 0.0f64);
    let mut swap = (0u64, 0.0f64);
    let mut reloads = 0usize;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (addr, lines, done, completed) = (&addr, &lines, &done, &completed);
            scope.spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_nodelay(true).unwrap();
                let mut r = BufReader::new(s.try_clone().unwrap());
                let mut k = 0usize;
                while !done.load(Ordering::SeqCst) {
                    let line = &lines[(c * 131 + k) % lines.len()];
                    k += 1;
                    s.write_all(format!("{line}\n").as_bytes()).unwrap();
                    let mut reply = String::new();
                    r.read_line(&mut reply).unwrap();
                    assert!(!reply.contains("\"error\""), "bench request failed: {reply}");
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        let mut op = TcpStream::connect(&addr).unwrap();
        op.set_nodelay(true).unwrap();
        let mut op_r = BufReader::new(op.try_clone().unwrap());
        let reload_line = format!(
            "{{\"cmd\":\"reload\",\"model\":{}}}\n",
            serde_json::to_string(reload_path).unwrap()
        );
        for seg in 0..SWAP_SEGMENTS {
            let c0 = completed.load(Ordering::Relaxed);
            let t0 = Instant::now();
            if seg % 2 == 1 {
                op.write_all(reload_line.as_bytes()).unwrap();
                let mut ack = String::new();
                op_r.read_line(&mut ack).unwrap();
                assert!(ack.contains("\"reloaded\""), "bench reload failed: {ack}");
                reloads += 1;
            }
            // The reload ack can arrive late behind queued client
            // requests; the segment runs its full length from t0
            // regardless, and is scored on its *actual* duration.
            let spent = t0.elapsed();
            if spent < SWAP_SEGMENT {
                std::thread::sleep(SWAP_SEGMENT - spent);
            }
            let dt = t0.elapsed().as_secs_f64();
            let dc = completed.load(Ordering::Relaxed) - c0;
            let phase = if seg % 2 == 1 { &mut swap } else { &mut quiet };
            phase.0 += dc;
            phase.1 += dt;
        }
        done.store(true, Ordering::SeqCst);
    });

    let (p50_us, p99_us, cache_hit_rate) = stats_and_stop(&addr);
    server.join().expect("server exits");

    let row = |(requests, seconds): (u64, f64), reloads: usize| Row {
        workers,
        batch_max: BATCH_MAX,
        numerics: Numerics::Exact,
        requests: requests as usize,
        requests_per_sec: requests as f64 / seconds,
        // One shared window: the latency/cache stats describe the pair
        // as a whole, not either phase alone.
        p50_us,
        p99_us,
        cache_hit_rate,
        idle_conns: 0,
        idle_threads_delta: 0,
        reloads,
    };
    (row(quiet, 0), row(swap, reloads))
}

fn main() {
    let swap_only = std::env::args().any(|a| a == "--swap-only");
    let cores = resolve_threads(0);
    let dataset = bench_dataset();
    // One training run shared by every arm: the tier columns then
    // differ only in kernel numerics, never in weights.
    let saved = bench_model(&dataset).to_saved();
    let load = || M2G4Rtp::from_saved(saved.clone());
    // The swap arm reloads the very same weights from disk: an
    // identity swap, so the pair's delta is pure swap overhead.
    let reload_path = std::env::temp_dir()
        .join(format!("rtp-bench-swap-{}.json", std::process::id()))
        .to_str()
        .unwrap()
        .to_string();
    std::fs::write(&reload_path, serde_json::to_string(&saved).unwrap())
        .expect("write swap model file");
    // Measure 2 workers even on a 1-core box (recorded honestly via
    // cores_available, as in training_throughput).
    let mut settings = vec![1usize, 2, cores];
    settings.sort_unstable();
    settings.dedup();
    if swap_only {
        settings.clear();
    }

    // Each worker count gets an unbatched arm (batch_max 1: the legacy
    // per-worker path), a batched arm (micro-batching + encoder cache)
    // and the two approximate-numerics arms (unbatched, so the tier
    // delta is not confounded with cache effects).
    let mut rows: Vec<(Row, f64)> = Vec::new(); // (row, speedup vs exact unbatched same workers)
    for &w in &settings {
        let off = measure(w, 1, Numerics::Exact, load(), &dataset, 0);
        let on = measure(w, BATCH_MAX, Numerics::Exact, load(), &dataset, 0);
        let fast = measure(w, 1, Numerics::Fast, load(), &dataset, 0);
        let quant = measure(w, 1, Numerics::Quantized, load(), &dataset, 0);
        let base_off = off.requests_per_sec;
        println!(
            "workers {:>2} unbatched: {:>8.1} req/s  (p50 {:.3} ms, p99 {:.3} ms)",
            off.workers,
            off.requests_per_sec,
            off.p50_us as f64 / 1000.0,
            off.p99_us as f64 / 1000.0
        );
        println!(
            "workers {:>2} batch={:>2}: {:>8.1} req/s  ({:.2}x vs unbatched same workers, cache hit rate {:.1}%, p50 {:.3} ms, p99 {:.3} ms)",
            on.workers,
            on.batch_max,
            on.requests_per_sec,
            on.requests_per_sec / base_off,
            on.cache_hit_rate * 100.0,
            on.p50_us as f64 / 1000.0,
            on.p99_us as f64 / 1000.0
        );
        for r in [&fast, &quant] {
            println!(
                "workers {:>2} {:>9}: {:>8.1} req/s  ({:.2}x vs exact unbatched, p50 {:.3} ms, p99 {:.3} ms)",
                r.workers,
                r.numerics.as_str(),
                r.requests_per_sec,
                r.requests_per_sec / base_off,
                r.p50_us as f64 / 1000.0,
                r.p99_us as f64 / 1000.0
            );
        }
        let on_speedup = on.requests_per_sec / base_off;
        let fast_speedup = fast.requests_per_sec / base_off;
        let quant_speedup = quant.requests_per_sec / base_off;
        rows.push((off, 1.0));
        rows.push((on, on_speedup));
        rows.push((fast, fast_speedup));
        rows.push((quant, quant_speedup));
    }

    // Idle-connection soak: the same 1-worker unbatched arm, measured
    // back-to-back with and without 1k+ parked idle sockets. The pair
    // is the honest before/after — the ratio is the throughput cost of
    // an idle herd on the epoll front end (contract: ~none), and
    // idle_threads_delta records that the herd consumed no threads.
    // Sized off RLIMIT_NOFILE (2 fds per in-process connection) so a
    // constrained runner soaks what it can instead of dying on EMFILE.
    if !swap_only {
        let soak_n = ((max_open_files().saturating_sub(256)) / 2).min(1500);
        let soak_base = measure(1, 1, Numerics::Exact, load(), &dataset, 0);
        let soak = measure(1, 1, Numerics::Exact, load(), &dataset, soak_n);
        println!(
            "idle soak: {:>8.1} req/s with {} idle conns vs {:>8.1} req/s with none ({:.2}x, {} extra thread(s))",
            soak.requests_per_sec,
            soak.idle_conns,
            soak_base.requests_per_sec,
            soak.requests_per_sec / soak_base.requests_per_sec,
            soak.idle_threads_delta
        );
        let soak_ratio = soak.requests_per_sec / soak_base.requests_per_sec;
        rows.push((soak_base, 1.0));
        rows.push((soak, soak_ratio));
    }

    // Hot-swap pair: the batched all-core configuration (the deployed
    // shape) under interleaved quiet/swap segments. The intra-window
    // ratio is what `perf_gate swap` enforces — a production swap
    // cadence must be near-invisible to the hot path.
    let (swap_base, swap) = measure_swap_pair(cores, load(), &dataset, &reload_path);
    let swap_ratio = swap.requests_per_sec / swap_base.requests_per_sec;
    println!(
        "hot swap: {:>8.1} req/s across swap segments ({} reloads) vs {:>8.1} req/s across interleaved quiet segments ({:.2}x)",
        swap.requests_per_sec, swap.reloads, swap_base.requests_per_sec, swap_ratio
    );
    rows.push((swap_base, 1.0));
    rows.push((swap, swap_ratio));
    std::fs::remove_file(&reload_path).ok();

    let base = rows[0].0.requests_per_sec;
    let entries: Vec<String> = rows
        .iter()
        .map(|(r, speedup_vs_unbatched)| {
            format!(
                "    {{\"workers\": {}, \"batch_max\": {}, \"numerics\": \"{}\", \"requests\": {}, \"requests_per_sec\": {:.3}, \"speedup_vs_1\": {:.3}, \"speedup_vs_unbatched\": {:.3}, \"cache_hit_rate\": {:.4}, \"p50_us\": {}, \"p99_us\": {}, \"idle_conns\": {}, \"idle_threads_delta\": {}, \"reloads\": {}}}",
                r.workers,
                r.batch_max,
                r.numerics.as_str(),
                r.requests,
                r.requests_per_sec,
                r.requests_per_sec / base,
                speedup_vs_unbatched,
                r.cache_hit_rate,
                r.p50_us,
                r.p99_us,
                r.idle_conns,
                r.idle_threads_delta,
                r.reloads
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"bench_meta\": {},\n  \"clients\": {CLIENTS},\n  \"requests_per_client\": {REQUESTS_PER_CLIENT},\n  \"batch_window_us\": {BATCH_WINDOW_US},\n  \"cores_available\": {cores},\n  \"rows\": [\n{}\n  ]\n}}\n",
        bench_meta_json(),
        entries.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&out).expect("create results dir");
    let path = out.join("serve_throughput.json");
    rtp_obs::fsio::write_atomic_str(&path, &json).expect("write results JSON");
    println!("wrote {}", path.display());
}
