//! Table V: single-query inference latency for every method of the
//! comparison. Uses briefly trained models — latency is
//! weight-independent — and one representative query per size bucket.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtp_baselines::{
    Baseline, DeepBaseline, DeepConfig, DeepKind, DistanceGreedy, OSquare, OSquareConfig,
    OrToolsLike, TimeGreedy,
};
use rtp_bench::{bench_dataset, bench_model, sample_near_n};
use rtp_eval::M2gPredictor;
use std::time::Duration;

fn bench_inference(c: &mut Criterion) {
    let dataset = bench_dataset();

    let mut predictors: Vec<Box<dyn Baseline>> =
        vec![Box::new(DistanceGreedy), Box::new(TimeGreedy), Box::new(OrToolsLike::default())];
    let osq_cfg = OSquareConfig::default();
    predictors.push(Box::new(OSquare::fit(&dataset, &osq_cfg)));
    for kind in [DeepKind::DeepRoute, DeepKind::Fdnet, DeepKind::Graph2Route] {
        let mut m = DeepBaseline::new(
            kind,
            DeepConfig { route_epochs: 1, time_epochs: 1, ..DeepConfig::quick(1) },
            &dataset,
        );
        m.fit(&dataset);
        predictors.push(Box::new(m));
    }
    predictors.push(Box::new(M2gPredictor::new(bench_model(&dataset), "M2G4RTP")));

    let mut group = c.benchmark_group("table5_inference");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [8usize, 16] {
        let sample = sample_near_n(&dataset, n);
        for p in &predictors {
            group.bench_with_input(BenchmarkId::new(p.name(), format!("n~{n}")), sample, |b, s| {
                b.iter(|| std::hint::black_box(p.predict(&dataset, s)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
