//! Micro-benchmarks of the autodiff substrate: the ops dominating model
//! training time (matmul, masked softmax, LSTM step) and a full
//! forward+backward pass of a representative composite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtp_tensor::nn::{Linear, LstmCell};
use rtp_tensor::{ParamStore, Tape};
use std::time::Duration;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(50);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &(r, k, cc) in &[(8usize, 32usize, 32usize), (20, 32, 32), (32, 64, 64), (128, 128, 128)] {
        let a: Vec<f32> = (0..r * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * cc).map(|i| (i as f32 * 0.73).cos()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{r}x{k}x{cc}")),
            &(a, b),
            |bench, (a, b)| {
                bench.iter(|| {
                    let mut t = Tape::new();
                    let ta = t.constant(r, k, a.clone());
                    let tb = t.constant(k, cc, b.clone());
                    std::hint::black_box(t.matmul(ta, tb))
                })
            },
        );
    }
    group.finish();
}

fn bench_masked_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_softmax_rows");
    group.sample_size(50);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[10usize, 20, 40] {
        let vals: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.11).sin() * 4.0).collect();
        let mask: Vec<bool> = (0..n * n).map(|i| i % 3 != 0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(vals, mask), |b, (v, m)| {
            b.iter(|| {
                let mut t = Tape::new();
                let x = t.constant(n, n, v.clone());
                std::hint::black_box(t.masked_softmax_rows(x, m))
            })
        });
    }
    group.finish();
}

fn bench_lstm_step(c: &mut Criterion) {
    let mut store = ParamStore::new(1);
    let cell = LstmCell::new(&mut store, "l", 32, 32);
    c.bench_function("lstm_step_32", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let x = t.constant(1, 32, vec![0.3; 32]);
            let s = cell.zero_state(&mut t);
            std::hint::black_box(cell.step(&mut t, &store, x, s))
        })
    });
}

fn bench_forward_backward(c: &mut Criterion) {
    // A 3-layer MLP forward+backward over a [16, 32] batch: the
    // canonical unit of training cost.
    let mut store = ParamStore::new(2);
    let l1 = Linear::new(&mut store, "l1", 32, 64);
    let l2 = Linear::new(&mut store, "l2", 64, 64);
    let l3 = Linear::new(&mut store, "l3", 64, 1);
    let x: Vec<f32> = (0..16 * 32).map(|i| (i as f32 * 0.17).sin()).collect();
    c.bench_function("mlp_forward_backward", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let xv = t.constant(16, 32, x.clone());
            let h = l1.forward(&mut t, &store, xv);
            let h = t.relu(h);
            let h = l2.forward(&mut t, &store, h);
            let h = t.relu(h);
            let y = l3.forward(&mut t, &store, h);
            let loss = t.mean_all(y);
            store.zero_grad();
            t.backward(loss, &mut store);
            std::hint::black_box(store.grad_norm())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_matmul, bench_masked_softmax, bench_lstm_step, bench_forward_backward
}
criterion_main!(benches);
