//! # rtp-bench
//!
//! Criterion benchmarks for the M²G4RTP reproduction:
//!
//! * `inference` — per-model single-query latency (paper Table V).
//! * `encoder_scaling` — GAT-e forward cost vs the number of locations.
//! * `tensor_ops` — substrate micro-benches (matmul, softmax, LSTM
//!   step, full backward).
//! * `simulator` — world generation, behaviour simulation and graph
//!   construction throughput.
//!
//! Shared fixtures live here so every bench sees identical inputs.

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_sim::{Dataset, DatasetBuilder, DatasetConfig};

/// A small dataset shared by the benches (deterministic).
pub fn bench_dataset() -> Dataset {
    DatasetBuilder::new(DatasetConfig::tiny(4242)).build()
}

/// A briefly trained M²G4RTP model with its pipeline attached. Latency
/// does not depend on how converged the weights are, so one epoch is
/// enough.
pub fn bench_model(dataset: &Dataset) -> M2G4Rtp {
    let mut model = M2G4Rtp::new(ModelConfig::for_dataset(dataset), 1);
    Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::quick() }).fit(&mut model, dataset);
    model
}

/// Machine/toolchain metadata embedded in every bench result JSON so
/// entries in `results/history.jsonl` are comparable across boxes:
/// logical cores, the CPU features the kernels dispatch on, the rustc
/// that built the bench and the `-C target-cpu` it was built with.
/// Returns a JSON object as a string (the benches hand-format their
/// output).
pub fn bench_meta_json() -> String {
    let nproc = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let features: Vec<String> =
        rtp_tensor::simd::detected_features().iter().map(|f| format!("\"{f}\"")).collect();
    format!(
        "{{\"nproc\": {nproc}, \"cpu_features\": [{}], \"rustc\": \"{}\", \"target_cpu\": \"{}\"}}",
        features.join(", "),
        env!("BENCH_RUSTC_VERSION"),
        env!("BENCH_TARGET_CPU"),
    )
}

/// Picks the test sample whose location count is closest to `n`.
pub fn sample_near_n(dataset: &Dataset, n: usize) -> &rtp_sim::RtpSample {
    dataset
        .test
        .iter()
        .min_by_key(|s| s.query.num_locations().abs_diff(n))
        .expect("non-empty test split")
}
