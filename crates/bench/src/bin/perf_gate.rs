//! Performance-regression gate and history for the bench suite.
//!
//! Subcommands (all paths relative to the workspace `results/` dir):
//!
//! * `append`   — extract headline metrics from each present bench
//!   JSON (`tensor_kernels.json`, `training_throughput.json`,
//!   `serve_throughput.json`) and append one line per bench to
//!   `history.jsonl` (timestamped, with the bench's machine metadata).
//! * `check`    — compare the current bench JSONs against the
//!   committed `perf_baseline.json`; exit non-zero if any metric
//!   regressed by more than the tolerance (default 15%). Metrics whose
//!   names end in `_us` or contain `seconds` are lower-is-better;
//!   everything else is higher-is-better. `--only <bench>` restricts
//!   the check (CI runs `--only tensor_kernels`: the kernel sweep is
//!   cheap and deterministic enough to gate on, while end-to-end
//!   throughput numbers are tracked in history without gating).
//!   `--tolerance <pct>` overrides the threshold.
//! * `baseline` — rewrite `perf_baseline.json` from the current bench
//!   JSONs (run after an intentional perf change, commit the result).
//! * `render`   — render `history.jsonl` into the markdown trend page
//!   `PERF_HISTORY.md`.
//! * `swap`     — gate on the serve bench's hot-swap arm: mid-bench
//!   `{"cmd":"reload"}` hot-swaps must not cost more than the
//!   tolerance (default 15%, CI passes 5) of the no-reload twin's
//!   throughput, compared within one run so scheduler noise between
//!   runs cannot fail the gate.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Number, Value};

const BENCHES: [&str; 3] = ["tensor_kernels", "training_throughput", "serve_throughput"];

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn load_json(path: &Path) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Num(n) => Some(n.as_f64()),
        _ => None,
    }
}

fn get_num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(num)
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Value::Num(n)) => n.as_u64(),
        _ => None,
    }
}

fn f(x: f64) -> Value {
    Value::Num(Number::F64(x))
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Flattens one bench result into `metric name -> value`. Names are
/// stable across runs (keyed by n / threads / workers+batch+numerics),
/// so history lines and the baseline are directly comparable.
fn extract_metrics(bench: &str, v: &Value) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    match bench {
        "tensor_kernels" => {
            for row in v.get("matmul_sweep").and_then(Value::as_array).unwrap_or_default() {
                if let Some(n) = get_u64(row, "n") {
                    for key in [
                        "naive_gflops",
                        "blocked_gflops",
                        "grad_a_gflops",
                        "grad_b_gflops",
                        "fast_gflops",
                        "q8_gflops",
                    ] {
                        if let Some(x) = get_num(row, key) {
                            m.insert(format!("matmul.n{n}.{key}"), x);
                        }
                    }
                }
            }
            if let Some(reuse) = v.get("tape_reuse") {
                for key in ["fresh_passes_per_sec", "reused_passes_per_sec"] {
                    if let Some(x) = get_num(reuse, key) {
                        m.insert(format!("tape_reuse.{key}"), x);
                    }
                }
            }
        }
        "training_throughput" => {
            for row in v.get("rows").and_then(Value::as_array).unwrap_or_default() {
                if let Some(t) = get_u64(row, "threads") {
                    if let Some(x) = get_num(row, "samples_per_sec") {
                        m.insert(format!("threads{t}.samples_per_sec"), x);
                    }
                }
            }
        }
        "serve_throughput" => {
            for row in v.get("rows").and_then(Value::as_array).unwrap_or_default() {
                let (Some(w), Some(b)) = (get_u64(row, "workers"), get_u64(row, "batch_max"))
                else {
                    continue;
                };
                let numerics =
                    row.get("numerics").and_then(Value::as_str).unwrap_or("exact").to_string();
                // The swap arm measures the same (workers, batch,
                // numerics) point as a plain arm — suffix its tag so
                // the two don't collide in the history/baseline.
                let reload = if get_u64(row, "reloads").unwrap_or(0) > 0 { ".reload" } else { "" };
                let tag = format!("w{w}.b{b}.{numerics}{reload}");
                for key in ["requests_per_sec", "p50_us", "p99_us"] {
                    if let Some(x) = get_num(row, key) {
                        m.insert(format!("{tag}.{key}"), x);
                    }
                }
            }
        }
        _ => {}
    }
    m
}

/// Lower-is-better metrics: latencies and wall-clock durations.
fn lower_is_better(metric: &str) -> bool {
    metric.ends_with("_us") || metric.contains("seconds")
}

fn now_unix() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

/// `(bench, metrics, meta)` for every bench JSON present on disk.
fn current_results(dir: &Path) -> Vec<(String, BTreeMap<String, f64>, Value)> {
    BENCHES
        .iter()
        .filter_map(|&bench| {
            let v = load_json(&dir.join(format!("{bench}.json")))?;
            let metrics = extract_metrics(bench, &v);
            if metrics.is_empty() {
                return None;
            }
            let meta = v.get("bench_meta").cloned().unwrap_or(Value::Null);
            Some((bench.to_string(), metrics, meta))
        })
        .collect()
}

fn metrics_value(metrics: &BTreeMap<String, f64>) -> Value {
    Value::Object(metrics.iter().map(|(k, &x)| (k.clone(), f(x))).collect())
}

fn cmd_append(dir: &Path) -> Result<(), String> {
    let results = current_results(dir);
    if results.is_empty() {
        return Err("no bench result JSONs found to append".into());
    }
    let ts = now_unix();
    let mut lines = String::new();
    for (bench, metrics, meta) in &results {
        let line = obj(vec![
            ("ts", Value::Num(Number::U(ts))),
            ("bench", Value::Str(bench.clone())),
            ("metrics", metrics_value(metrics)),
            ("meta", meta.clone()),
        ]);
        lines.push_str(&serde_json::to_string(&line).map_err(|e| e.to_string())?);
        lines.push('\n');
        println!("append: {bench} ({} metrics)", metrics.len());
    }
    let path = dir.join("history.jsonl");
    let mut all = std::fs::read_to_string(&path).unwrap_or_default();
    all.push_str(&lines);
    rtp_obs::fsio::write_atomic_str(&path, &all).map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

fn cmd_baseline(dir: &Path) -> Result<(), String> {
    let results = current_results(dir);
    if results.is_empty() {
        return Err("no bench result JSONs found for a baseline".into());
    }
    let mut root: Vec<(String, Value)> =
        vec![("generated_ts".to_string(), Value::Num(Number::U(now_unix())))];
    for (bench, metrics, meta) in &results {
        root.push((
            bench.clone(),
            obj(vec![("metrics", metrics_value(metrics)), ("meta", meta.clone())]),
        ));
    }
    let path = dir.join("perf_baseline.json");
    let text = serde_json::to_string_pretty(&Value::Object(root)).map_err(|e| e.to_string())?;
    rtp_obs::fsio::write_atomic_str(&path, &(text + "\n")).map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

fn cmd_check(dir: &Path, only: Option<&str>, tolerance_pct: f64) -> Result<(), String> {
    let baseline = load_json(&dir.join("perf_baseline.json"))
        .ok_or("missing results/perf_baseline.json — run `perf_gate baseline` and commit it")?;
    let results = current_results(dir);
    let mut checked = 0usize;
    let mut regressions = Vec::new();
    for (bench, metrics, _) in &results {
        if only.is_some_and(|o| o != bench) {
            continue;
        }
        let Some(base) = baseline.get(bench).and_then(|b| b.get("metrics")) else {
            println!("check: {bench}: no baseline entry, skipping");
            continue;
        };
        for (metric, &current) in metrics {
            let Some(expected) = get_num(base, metric) else {
                continue; // new metric: tracked from the next baseline on
            };
            if expected == 0.0 {
                continue;
            }
            checked += 1;
            let change = if lower_is_better(metric) {
                (current - expected) / expected // growth in latency = regression
            } else {
                (expected - current) / expected // drop in throughput = regression
            };
            if change * 100.0 > tolerance_pct {
                regressions.push(format!(
                    "{bench}/{metric}: {expected:.3} -> {current:.3} ({:+.1}% vs tolerance {tolerance_pct}%)",
                    if lower_is_better(metric) { change * 100.0 } else { -change * 100.0 },
                ));
            }
        }
    }
    if checked == 0 {
        return Err(format!(
            "check compared 0 metrics (only={}): refusing to pass an empty gate",
            only.unwrap_or("<all>")
        ));
    }
    if regressions.is_empty() {
        println!("perf gate OK: {checked} metric(s) within {tolerance_pct}% of baseline");
        Ok(())
    } else {
        for r in &regressions {
            eprintln!("REGRESSION {r}");
        }
        Err(format!("{} metric(s) regressed beyond {tolerance_pct}%", regressions.len()))
    }
}

/// The hot-swap gate: reads the swap arm out of the current
/// `serve_throughput.json` and fails if the mid-bench reloads cost
/// more than `tolerance_pct` of the no-reload twin's throughput. The
/// twin is measured back-to-back in the same run (the ratio is the
/// row's `speedup_vs_unbatched`), so the gate is immune to the
/// cross-run scheduler noise that keeps the serve bench out of the
/// baseline gate.
fn cmd_swap(dir: &Path, tolerance_pct: f64) -> Result<(), String> {
    let v = load_json(&dir.join("serve_throughput.json"))
        .ok_or("missing results/serve_throughput.json — run the serve_throughput bench first")?;
    let row = v
        .get("rows")
        .and_then(Value::as_array)
        .unwrap_or_default()
        .iter()
        .find(|r| get_u64(r, "reloads").unwrap_or(0) > 0)
        .ok_or("serve_throughput.json has no hot-swap arm — rerun the bench")?;
    let reloads = get_u64(row, "reloads").unwrap_or(0);
    let ratio =
        get_num(row, "speedup_vs_unbatched").ok_or("hot-swap row lacks its intra-run ratio")?;
    let cost_pct = (1.0 - ratio) * 100.0;
    if cost_pct > tolerance_pct {
        return Err(format!(
            "{reloads} mid-bench hot-swaps cost {cost_pct:.1}% throughput \
             (tolerance {tolerance_pct}%)"
        ));
    }
    println!(
        "swap gate OK: {reloads} mid-bench hot-swaps cost {cost_pct:.1}% throughput \
         (tolerance {tolerance_pct}%)"
    );
    Ok(())
}

/// Headline metrics per bench for the trend page (full metric sets
/// live in the JSONL).
fn headline(bench: &str) -> Vec<&'static str> {
    match bench {
        "tensor_kernels" => vec![
            "matmul.n128.blocked_gflops",
            "matmul.n128.grad_a_gflops",
            "matmul.n128.grad_b_gflops",
            "matmul.n128.fast_gflops",
            "matmul.n128.q8_gflops",
            "tape_reuse.reused_passes_per_sec",
        ],
        "training_throughput" => vec!["threads1.samples_per_sec", "threads2.samples_per_sec"],
        "serve_throughput" => vec![
            "w1.b1.exact.requests_per_sec",
            "w1.b8.exact.requests_per_sec",
            "w1.b1.quantized.requests_per_sec",
            "w1.b1.exact.p50_us",
            "w1.b1.quantized.p50_us",
        ],
        _ => vec![],
    }
}

fn cmd_render(dir: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(dir.join("history.jsonl"))
        .map_err(|_| "missing results/history.jsonl — run `perf_gate append` first")?;
    let mut by_bench: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v: Value = serde_json::from_str(line).map_err(|e| format!("bad history line: {e}"))?;
        if let Some(bench) = v.get("bench").and_then(Value::as_str) {
            by_bench.entry(bench.to_string()).or_default().push(v);
        }
    }
    let mut md = String::from(
        "# Performance history\n\nAppended by `cargo run --release -p rtp-bench --bin perf_gate -- append` \
         after each bench run; one row per run (most recent last). Headline metrics only — every \
         recorded metric is in `history.jsonl`, and the CI gate compares against \
         `perf_baseline.json`.\n",
    );
    for (bench, entries) in &by_bench {
        let cols = headline(bench);
        let cols: Vec<&str> = if cols.is_empty() {
            entries
                .last()
                .and_then(|e| e.get("metrics"))
                .and_then(Value::as_object)
                .map(|m| m.iter().take(6).map(|(k, _)| k.as_str()).collect())
                .unwrap_or_default()
        } else {
            cols
        };
        let _ = write!(md, "\n## {bench}\n\n| run (unix ts) | nproc |");
        for c in &cols {
            let _ = write!(md, " {c} |");
        }
        md.push('\n');
        md.push_str("|---|---|");
        md.push_str(&"---|".repeat(cols.len()));
        md.push('\n');
        let tail = entries.len().saturating_sub(20);
        for e in &entries[tail..] {
            let ts = get_u64(e, "ts").unwrap_or(0);
            let nproc = e
                .get("meta")
                .and_then(|m| get_u64(m, "nproc"))
                .map(|n| n.to_string())
                .unwrap_or_else(|| "?".into());
            let _ = write!(md, "| {ts} | {nproc} |");
            for c in &cols {
                match e.get("metrics").and_then(|m| get_num(m, c)) {
                    Some(x) => {
                        let _ = write!(md, " {x:.2} |");
                    }
                    None => md.push_str(" – |"),
                }
            }
            md.push('\n');
        }
    }
    let path = dir.join("PERF_HISTORY.md");
    rtp_obs::fsio::write_atomic_str(&path, &md).map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = results_dir();
    let mut only: Option<String> = None;
    let mut tolerance = 15.0f64;
    let mut cmd: Option<&str> = None;
    let mut it = args.iter();
    let usage =
        "usage: perf_gate <append|check|baseline|render|swap> [--only <bench>] [--tolerance <pct>]";
    while let Some(a) = it.next() {
        match a.as_str() {
            "append" => cmd = Some("append"),
            "check" => cmd = Some("check"),
            "baseline" => cmd = Some("baseline"),
            "render" => cmd = Some("render"),
            "swap" => cmd = Some("swap"),
            "--only" => only = it.next().cloned(),
            "--tolerance" => {
                tolerance = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tolerance needs a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }
    let result = match cmd {
        Some("append") => cmd_append(&dir),
        Some("check") => cmd_check(&dir, only.as_deref(), tolerance),
        Some("baseline") => cmd_baseline(&dir),
        Some("render") => cmd_render(&dir),
        Some("swap") => cmd_swap(&dir, tolerance),
        _ => Err(usage.to_string()),
    };
    if let Err(e) = result {
        eprintln!("perf_gate: {e}");
        std::process::exit(1);
    }
}
