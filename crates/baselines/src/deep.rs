//! The deep-learning baselines: DeepRoute (Transformer encoder), FDNET
//! (LSTM encoder, two-step route→time), Graph2Route (single-level GCN
//! encoder).
//!
//! All three share the experimental protocol of paper §V-B: a route
//! model (encoder + attention pointer decoder) trained on route
//! cross-entropy, and a **separately trained** time head ("a
//! three-layer fully connected neural network ... trained separately
//! from the original model") that consumes the frozen encoder
//! representations and the *predicted* route — which is exactly where
//! the two-step error accumulation the paper criticises comes from.
//!
//! FDNET's Wide&Deep time module is approximated by the same MLP head
//! over [representation ‖ position encoding ‖ handcrafted step
//! features]; the wide (raw-feature) path is the handcrafted block.

use m2g4rtp::{derive_aoi_outputs, NodeEmbedder, Prediction, RouteDecoder, TIME_SCALE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use rtp_graph::{FeatureScaler, GraphBuilder, GraphConfig, MultiLevelGraph};
use rtp_sim::{Dataset, RtpSample};
use rtp_tensor::nn::{positional_encoding, Embedding, Linear, LstmCell, Mlp};
use rtp_tensor::optim::{Adam, Optimizer};
use rtp_tensor::parallel::{parallel_map_ordered_with, resolve_threads};
use rtp_tensor::{GradBuffer, ParamStore, Tape, TensorId};
use serde::{Deserialize, Serialize};

use crate::Baseline;

/// Which deep baseline to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeepKind {
    /// Transformer encoder + pointer decoder (Wen et al., ICDE 2021).
    DeepRoute,
    /// LSTM (RNN) encoder + pointer decoder, two-step time module
    /// (Gao et al., KDD 2021).
    Fdnet,
    /// Edge-conditioned GCN encoder, single level (Wen et al., KDD 2022).
    Graph2Route,
}

impl DeepKind {
    /// Table display name.
    pub fn label(self) -> &'static str {
        match self {
            DeepKind::DeepRoute => "DeepRoute",
            DeepKind::Fdnet => "FDNET",
            DeepKind::Graph2Route => "Graph2Route",
        }
    }
}

/// Hyperparameters shared by the deep baselines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeepConfig {
    /// Hidden width.
    pub d: usize,
    /// Discrete-feature embedding width.
    pub d_disc: usize,
    /// Courier embedding width.
    pub d_courier: usize,
    /// Positional-encoding width for the time head.
    pub d_pos: usize,
    /// Transformer heads (DeepRoute only).
    pub n_heads: usize,
    /// Encoder depth.
    pub n_layers: usize,
    /// Route-phase epochs.
    pub route_epochs: usize,
    /// Time-phase epochs.
    pub time_epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Samples per optimizer step.
    pub batch_size: usize,
    /// Gradient-norm clip.
    pub grad_clip: f32,
    /// Early-stopping patience per phase.
    pub patience: usize,
    /// Shuffle/init seed.
    pub seed: u64,
    /// Print progress.
    pub verbose: bool,
    /// Worker threads for the data-parallel mini-batch loop
    /// (0 = all cores). Results are bit-identical for every setting.
    pub threads: usize,
}

impl DeepConfig {
    /// Seconds-scale config for tests.
    pub fn quick(seed: u64) -> Self {
        Self {
            d: 32,
            d_disc: 8,
            d_courier: 8,
            d_pos: 8,
            n_heads: 4,
            n_layers: 2,
            route_epochs: 5,
            time_epochs: 4,
            lr: 2e-3,
            batch_size: 16,
            grad_clip: 5.0,
            patience: 3,
            seed,
            verbose: false,
            threads: 0,
        }
    }

    /// The configuration used by the experiment harness.
    pub fn full(seed: u64) -> Self {
        Self { route_epochs: 18, time_epochs: 10, patience: 4, verbose: true, ..Self::quick(seed) }
    }
}

// -------------------------------------------------------------------
// encoders
// -------------------------------------------------------------------

#[derive(Debug)]
struct TransformerLayer {
    wq: Vec<rtp_tensor::ParamId>,
    wk: Vec<rtp_tensor::ParamId>,
    wv: Vec<rtp_tensor::ParamId>,
    wo: Linear,
    ffn1: Linear,
    ffn2: Linear,
    ln1_g: rtp_tensor::ParamId,
    ln1_b: rtp_tensor::ParamId,
    ln2_g: rtp_tensor::ParamId,
    ln2_b: rtp_tensor::ParamId,
    dh: usize,
}

impl TransformerLayer {
    fn new(store: &mut ParamStore, name: &str, d: usize, n_heads: usize) -> Self {
        assert_eq!(d % n_heads, 0, "transformer width must divide heads");
        let dh = d / n_heads;
        let mk = |store: &mut ParamStore, what: &str, p: usize| {
            store.add_xavier(&format!("{name}.{what}{p}"), d, dh)
        };
        Self {
            wq: (0..n_heads).map(|p| mk(store, "wq", p)).collect(),
            wk: (0..n_heads).map(|p| mk(store, "wk", p)).collect(),
            wv: (0..n_heads).map(|p| mk(store, "wv", p)).collect(),
            wo: Linear::new_no_bias(store, &format!("{name}.wo"), d, d),
            ffn1: Linear::new(store, &format!("{name}.ffn1"), d, 2 * d),
            ffn2: Linear::new(store, &format!("{name}.ffn2"), 2 * d, d),
            ln1_g: store.add_param(&format!("{name}.ln1.g"), 1, d, vec![1.0; d]),
            ln1_b: store.add_zeros(&format!("{name}.ln1.b"), 1, d),
            ln2_g: store.add_param(&format!("{name}.ln2.g"), 1, d, vec![1.0; d]),
            ln2_b: store.add_zeros(&format!("{name}.ln2.b"), 1, d),
            dh,
        }
    }

    fn forward(&self, t: &mut Tape, store: &ParamStore, x: TensorId) -> TensorId {
        let (n, _) = t.shape(x);
        let full = vec![true; n * n];
        let scale = 1.0 / (self.dh as f32).sqrt();
        let mut heads = Vec::with_capacity(self.wq.len());
        for p in 0..self.wq.len() {
            let wq = t.param(store, self.wq[p]);
            let wk = t.param(store, self.wk[p]);
            let wv = t.param(store, self.wv[p]);
            let q = t.matmul(x, wq);
            let k = t.matmul(x, wk);
            let v = t.matmul(x, wv);
            let kt = t.transpose(k);
            let scores = t.matmul(q, kt);
            let scores = t.scale(scores, scale);
            let attn = t.masked_softmax_rows(scores, &full);
            heads.push(t.matmul(attn, v));
        }
        let cat = t.concat_cols(&heads);
        let att = self.wo.forward(t, store, cat);
        let res1 = t.add(x, att);
        let norm1 = t.layer_norm_rows(res1, 1e-5);
        let g1 = t.param(store, self.ln1_g);
        let b1 = t.param(store, self.ln1_b);
        let norm1 = t.mul_row(norm1, g1);
        let norm1 = t.add_row(norm1, b1);
        let h = self.ffn1.forward(t, store, norm1);
        let h = t.relu(h);
        let h = self.ffn2.forward(t, store, h);
        let res2 = t.add(norm1, h);
        let norm2 = t.layer_norm_rows(res2, 1e-5);
        let g2 = t.param(store, self.ln2_g);
        let b2 = t.param(store, self.ln2_b);
        let norm2 = t.mul_row(norm2, g2);
        t.add_row(norm2, b2)
    }
}

#[derive(Debug)]
struct GcnLayer {
    w_self: Linear,
    w_nbr: Linear,
    w_edge: Linear,
}

impl GcnLayer {
    fn new(store: &mut ParamStore, name: &str, d: usize) -> Self {
        Self {
            w_self: Linear::new(store, &format!("{name}.self"), d, d),
            w_nbr: Linear::new_no_bias(store, &format!("{name}.nbr"), d, d),
            w_edge: Linear::new_no_bias(store, &format!("{name}.edge"), d, d),
        }
    }

    /// `x [n,d]`, `z [n*n,d]` (projected edge features), `adj [n*n]`.
    fn forward(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        z: TensorId,
        adj: &[bool],
    ) -> TensorId {
        let (n, _) = t.shape(x);
        // degree-normalised adjacency (constants: no gradient through
        // the graph structure)
        let mut anorm = vec![0.0f32; n * n];
        let mut sel = vec![0.0f32; n * n * n];
        for i in 0..n {
            let deg = adj[i * n..(i + 1) * n].iter().filter(|&&b| b).count().max(1) as f32;
            for j in 0..n {
                if adj[i * n + j] {
                    anorm[i * n + j] = 1.0 / deg;
                    sel[i * (n * n) + i * n + j] = 1.0 / deg;
                }
            }
        }
        let a = t.constant(n, n, anorm);
        let s = t.constant(n, n * n, sel);
        let self_term = self.w_self.forward(t, store, x);
        let nbr = self.w_nbr.forward(t, store, x);
        let nbr_agg = t.matmul(a, nbr);
        let ze = self.w_edge.forward(t, store, z);
        let edge_agg = t.matmul(s, ze);
        let sum = t.add(self_term, nbr_agg);
        let sum = t.add(sum, edge_agg);
        t.relu(sum)
    }
}

#[derive(Debug)]
enum DeepEncoder {
    Transformer(Vec<TransformerLayer>),
    Lstm(LstmCell),
    Gcn { edge_proj: Linear, layers: Vec<GcnLayer> },
}

// -------------------------------------------------------------------
// the baseline model
// -------------------------------------------------------------------

/// A deep route-prediction baseline with a separately trained plugged
/// time head. Construct with [`DeepBaseline::new`], train with
/// [`DeepBaseline::fit`].
#[derive(Debug)]
pub struct DeepBaseline {
    kind: DeepKind,
    config: DeepConfig,
    /// All learnable weights.
    pub store: ParamStore,
    node_emb: NodeEmbedder,
    courier_emb: Embedding,
    encoder: DeepEncoder,
    route_dec: RouteDecoder,
    time_head: Mlp,
    /// Param ids at or beyond this index belong to the time head.
    time_param_start: usize,
    pipeline: Option<(GraphBuilder, FeatureScaler)>,
}

impl DeepBaseline {
    /// Builds an untrained baseline of the given kind.
    pub fn new(kind: DeepKind, config: DeepConfig, dataset: &Dataset) -> Self {
        let mut store = ParamStore::new(config.seed ^ 0xBA5E);
        let d = config.d;
        let node_emb = NodeEmbedder::new(
            &mut store,
            "node_emb",
            rtp_graph::LOC_CONT_DIM,
            rtp_graph::GLOBAL_CONT_DIM,
            dataset.city.aois.len() + 1,
            dataset.couriers.len() + 1,
            config.d_disc,
            d,
        );
        let courier_emb =
            Embedding::new(&mut store, "courier_emb", dataset.couriers.len() + 1, config.d_courier);
        let encoder = match kind {
            DeepKind::DeepRoute => DeepEncoder::Transformer(
                (0..config.n_layers)
                    .map(|k| {
                        TransformerLayer::new(&mut store, &format!("enc.l{k}"), d, config.n_heads)
                    })
                    .collect(),
            ),
            DeepKind::Fdnet => DeepEncoder::Lstm(LstmCell::new(&mut store, "enc.lstm", d, d)),
            DeepKind::Graph2Route => DeepEncoder::Gcn {
                edge_proj: Linear::new(&mut store, "enc.edge_proj", rtp_graph::EDGE_DIM, d),
                layers: (0..config.n_layers)
                    .map(|k| GcnLayer::new(&mut store, &format!("enc.l{k}"), d))
                    .collect(),
            },
        };
        let d_u = config.d_courier + 3;
        let route_dec = RouteDecoder::new(&mut store, "route_dec", d, d_u, d, d);
        let time_param_start = store.len();
        // three-layer plugged time head (paper §V-B)
        let time_in = d + config.d_pos + 2;
        let time_head = Mlp::new(&mut store, "time_head", &[time_in, 2 * d, d, 1]);
        Self {
            kind,
            config,
            store,
            node_emb,
            courier_emb,
            encoder,
            route_dec,
            time_head,
            time_param_start,
            pipeline: None,
        }
    }

    /// The baseline kind.
    pub fn kind(&self) -> DeepKind {
        self.kind
    }

    fn encode(&self, t: &mut Tape, store: &ParamStore, g: &MultiLevelGraph) -> TensorId {
        let x = self.node_emb.embed(t, store, &g.locations, &g.global);
        match &self.encoder {
            DeepEncoder::Transformer(layers) => {
                let mut h = x;
                for l in layers {
                    h = l.forward(t, store, h);
                }
                h
            }
            DeepEncoder::Lstm(cell) => {
                let (n, _) = t.shape(x);
                let mut state = cell.zero_state(t);
                let mut rows = Vec::with_capacity(n);
                for i in 0..n {
                    let xi = t.row(x, i);
                    state = cell.step(t, store, xi, state);
                    rows.push(state.0);
                }
                t.concat_rows(&rows)
            }
            DeepEncoder::Gcn { edge_proj, layers } => {
                let nn = g.locations.n * g.locations.n;
                let raw = t.constant(nn, g.locations.edge_dim, g.locations.edge.clone());
                let z = edge_proj.forward(t, store, raw);
                let mut h = x;
                for l in layers {
                    h = l.forward(t, store, h, z, &g.locations.adj);
                }
                h
            }
        }
    }

    fn courier_repr(&self, t: &mut Tape, store: &ParamStore, g: &MultiLevelGraph) -> TensorId {
        let emb = self.courier_emb.forward(t, store, &[g.global.courier_id]);
        let profile = t.constant(1, 3, g.global.cont[..3].to_vec());
        t.concat_cols(&[emb, profile])
    }

    /// Time-head forward for a decoded route: per location, consumes
    /// [frozen representation ‖ positional encoding ‖ (position
    /// fraction, cumulative path distance)]. Returns `[n,1]` scaled
    /// times aligned with location index.
    fn time_forward(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        g: &MultiLevelGraph,
        reps: TensorId,
        route: &[usize],
    ) -> TensorId {
        let n = route.len();
        let mut rows: Vec<Option<TensorId>> = vec![None; n];
        let mut cum = 0.0f32;
        let mut prev: Option<usize> = None;
        for (pos, &loc) in route.iter().enumerate() {
            let step_dist = match prev {
                None => g.locations.cont[loc * g.locations.cont_dim + 2].abs(),
                Some(p) => g.locations.edge[(p * n + loc) * g.locations.edge_dim..][..1][0].abs(),
            };
            cum += step_dist;
            let rep = t.row(reps, loc);
            let pe = positional_encoding(pos + 1, self.config.d_pos);
            let pe = t.constant(1, self.config.d_pos, pe);
            let extra = t.constant(1, 2, vec![(pos + 1) as f32 / n as f32, cum]);
            let inp = t.concat_cols(&[rep, pe, extra]);
            rows[loc] = Some(self.time_head.forward(t, store, inp));
            prev = Some(loc);
        }
        let rows: Vec<TensorId> = rows.into_iter().map(|r| r.expect("route is complete")).collect();
        t.concat_rows(&rows)
    }

    /// Two-phase training: route model first (validation-KRC early
    /// stopping), then the plugged time head against the *predicted*
    /// routes with everything else frozen (validation-MAE early
    /// stopping).
    pub fn fit(&mut self, dataset: &Dataset) {
        let _fit_span = rtp_obs::span!("deep.fit");
        let obs = rtp_obs::metrics::global();
        let (g_val_krc, g_val_mae) = (obs.gauge("deep.val_krc"), obs.gauge("deep.val_mae"));
        let builder = GraphBuilder::new(GraphConfig::default());
        let scaler = FeatureScaler::fit(dataset, &builder);
        let prep = |samples: &[RtpSample]| -> Vec<MultiLevelGraph> {
            samples
                .par_iter()
                .map(|s| {
                    let mut g = builder.build(
                        &s.query,
                        &dataset.city,
                        &dataset.couriers[s.query.courier_id],
                    );
                    scaler.apply(&mut g);
                    g
                })
                .collect()
        };
        let train_graphs = prep(&dataset.train);
        let val_graphs = prep(&dataset.val);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut indices: Vec<usize> = (0..train_graphs.len()).collect();

        // One tape per worker, reused (via `Tape::clear`) across every
        // sample, batch and epoch of both training phases — the hot loop
        // allocates from the tape's buffer pool instead of the heap.
        let workers =
            resolve_threads(self.config.threads).min(self.config.batch_size.max(1)).max(1);
        let mut worker_tapes: Vec<Tape> = (0..workers).map(|_| Tape::new()).collect();

        // ---------- phase 1: route ----------
        let route_phase_span = rtp_obs::span!("deep.route_phase");
        let mut opt = Adam::new(self.config.lr);
        let mut best = f64::NEG_INFINITY;
        let mut best_snap = self.store.snapshot();
        let mut since = 0usize;
        for epoch in 0..self.config.route_epochs {
            let _epoch_span = rtp_obs::span!("deep.epoch", epoch);
            indices.shuffle(&mut rng);
            for batch in indices.chunks(self.config.batch_size) {
                self.store.zero_grad();
                let frozen = self.store.clone();
                let this = &*self;
                let shards = parallel_map_ordered_with(&mut worker_tapes, batch.len(), |t, k| {
                    let i = batch[k];
                    t.clear();
                    let reps = this.encode(t, &frozen, &train_graphs[i]);
                    let u = this.courier_repr(t, &frozen, &train_graphs[i]);
                    let loss = this.route_dec.train_loss(
                        t,
                        &frozen,
                        reps,
                        u,
                        &dataset.train[i].truth.route,
                    );
                    let mut buffer = GradBuffer::zeros_like(&frozen);
                    t.backward_into(loss, &mut buffer);
                    buffer
                });
                for buffer in &shards {
                    self.store.accumulate(buffer);
                }
                self.store.scale_grad(1.0 / batch.len() as f32);
                self.store.clip_grad_norm(self.config.grad_clip);
                opt.step(&mut self.store);
            }
            let krc = self.mean_val_krc(&val_graphs, &dataset.val);
            g_val_krc.set(krc);
            if self.config.verbose {
                eprintln!("[{}] route epoch {epoch:>3}  val KRC {krc:>6.3}", self.kind.label());
            }
            if krc > best {
                best = krc;
                best_snap = self.store.snapshot();
                since = 0;
            } else {
                since += 1;
                if since > self.config.patience {
                    break;
                }
            }
        }
        self.store.restore(&best_snap);
        drop(route_phase_span);

        // ---------- phase 2: time head on predicted routes ----------
        let _time_phase_span = rtp_obs::span!("deep.time_phase");
        let mut opt = Adam::new(self.config.lr);
        let mut best = f64::MAX;
        let mut best_snap = self.store.snapshot();
        let mut since = 0usize;
        for epoch in 0..self.config.time_epochs {
            let _epoch_span = rtp_obs::span!("deep.epoch", epoch);
            indices.shuffle(&mut rng);
            for batch in indices.chunks(self.config.batch_size) {
                self.store.zero_grad();
                let frozen = self.store.clone();
                let this = &*self;
                let shards = parallel_map_ordered_with(&mut worker_tapes, batch.len(), |t, k| {
                    let i = batch[k];
                    let g = &train_graphs[i];
                    t.clear();
                    let reps = this.encode(t, &frozen, g);
                    let u = this.courier_repr(t, &frozen, g);
                    let route = this.route_dec.decode(t, &frozen, reps, u);
                    let pred = this.time_forward(t, &frozen, g, reps, &route);
                    let target: Vec<f32> =
                        dataset.train[i].truth.arrival.iter().map(|&v| v / TIME_SCALE).collect();
                    let y = t.constant(target.len(), 1, target);
                    let loss = t.mae_loss(pred, y);
                    let mut buffer = GradBuffer::zeros_like(&frozen);
                    t.backward_into(loss, &mut buffer);
                    buffer
                });
                for buffer in &shards {
                    self.store.accumulate(buffer);
                }
                // freeze everything but the time head
                let ids: Vec<_> = self.store.iter_ids().collect();
                for id in ids {
                    if id.index() < self.time_param_start {
                        self.store.zero_grad_of(id);
                    }
                }
                self.store.scale_grad(1.0 / batch.len() as f32);
                self.store.clip_grad_norm(self.config.grad_clip);
                opt.step(&mut self.store);
            }
            let mae = self.mean_val_mae(&val_graphs, &dataset.val);
            g_val_mae.set(mae);
            if self.config.verbose {
                eprintln!("[{}] time epoch {epoch:>3}   val MAE {mae:>7.2}", self.kind.label());
            }
            if mae < best {
                best = mae;
                best_snap = self.store.snapshot();
                since = 0;
            } else {
                since += 1;
                if since > self.config.patience {
                    break;
                }
            }
        }
        self.store.restore(&best_snap);
        self.pipeline = Some((builder, scaler));
    }

    fn mean_val_krc(&self, graphs: &[MultiLevelGraph], samples: &[RtpSample]) -> f64 {
        if graphs.is_empty() {
            return 0.0;
        }
        // Validation never needs gradients: one pooled no-grad tape
        // serves every sample.
        let mut t = Tape::inference();
        let mut sum = 0.0f64;
        for (g, s) in graphs.iter().zip(samples) {
            t.clear();
            let reps = self.encode(&mut t, &self.store, g);
            let u = self.courier_repr(&mut t, &self.store, g);
            let route = self.route_dec.decode(&mut t, &self.store, reps, u);
            sum += rtp_metrics::krc(&route, &s.truth.route);
        }
        sum / graphs.len() as f64
    }

    fn mean_val_mae(&self, graphs: &[MultiLevelGraph], samples: &[RtpSample]) -> f64 {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        // One pooled no-grad tape across the sweep instead of a fresh
        // allocation per sample.
        let mut t = Tape::inference();
        for (g, s) in graphs.iter().zip(samples) {
            let p = self.predict_graph_into(&mut t, g);
            for (pt, yt) in p.times.iter().zip(&s.truth.arrival) {
                sum += (pt - yt).abs() as f64;
            }
            n += s.truth.arrival.len();
        }
        sum / n.max(1) as f64
    }

    /// Inference on a pre-built (scaled) graph. Runs on a no-grad tape:
    /// no gradient buffers, no op payloads.
    pub fn predict_graph(&self, g: &MultiLevelGraph) -> Prediction {
        let mut t = Tape::inference();
        self.predict_graph_into(&mut t, g)
    }

    /// Like [`DeepBaseline::predict_graph`] but reuses `t` (cleared
    /// first), so validation sweeps recycle the tape's buffer pool.
    pub fn predict_graph_into(&self, t: &mut Tape, g: &MultiLevelGraph) -> Prediction {
        t.clear();
        let reps = self.encode(t, &self.store, g);
        let u = self.courier_repr(t, &self.store, g);
        let route = self.route_dec.decode(t, &self.store, reps, u);
        let pred = self.time_forward(t, &self.store, g, reps, &route);
        let times: Vec<f32> = t.data(pred).iter().map(|&v| (v * TIME_SCALE).max(0.0)).collect();
        let m = g.aois.n;
        let (aoi_route, aoi_times) = derive_aoi_outputs(&route, &times, &g.loc_to_aoi, m);
        Prediction { aoi_route, aoi_times, route, times }
    }
}

impl Baseline for DeepBaseline {
    fn name(&self) -> &'static str {
        self.kind.label()
    }

    fn predict(&self, dataset: &Dataset, sample: &RtpSample) -> Prediction {
        let (builder, scaler) =
            self.pipeline.as_ref().expect("DeepBaseline::fit must run before predict");
        let mut g =
            builder.build(&sample.query, &dataset.city, &dataset.couriers[sample.query.courier_id]);
        scaler.apply(&mut g);
        self.predict_graph(&g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    fn tiny_config(seed: u64) -> DeepConfig {
        DeepConfig {
            d: 16,
            n_heads: 2,
            n_layers: 1,
            route_epochs: 2,
            time_epochs: 2,
            patience: 5,
            ..DeepConfig::quick(seed)
        }
    }

    #[test]
    fn all_kinds_train_and_emit_valid_predictions() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(101)).build();
        for kind in [DeepKind::DeepRoute, DeepKind::Fdnet, DeepKind::Graph2Route] {
            let mut m = DeepBaseline::new(kind, tiny_config(3), &d);
            m.fit(&d);
            for s in d.test.iter().take(3) {
                let p = m.predict(&d, s);
                let n = s.query.num_locations();
                assert_eq!(p.route.len(), n, "{kind:?}");
                let mut seen = vec![false; n];
                for &i in &p.route {
                    assert!(!seen[i], "{kind:?} repeats");
                    seen[i] = true;
                }
                assert!(p.times.iter().all(|&x| x >= 0.0 && x.is_finite()), "{kind:?}");
                assert_eq!(p.aoi_route.len(), s.query.distinct_aois().len());
            }
        }
    }

    #[test]
    fn phase_two_only_updates_the_time_head() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(102)).build();
        let mut m = DeepBaseline::new(DeepKind::Fdnet, tiny_config(4), &d);
        // run only phase 2 by setting route epochs to zero
        m.config.route_epochs = 0;
        let route_params_before: Vec<Vec<f32>> = m
            .store
            .iter_ids()
            .filter(|id| id.index() < m.time_param_start)
            .map(|id| m.store.data(id).to_vec())
            .collect();
        m.fit(&d);
        let route_params_after: Vec<Vec<f32>> = m
            .store
            .iter_ids()
            .filter(|id| id.index() < m.time_param_start)
            .map(|id| m.store.data(id).to_vec())
            .collect();
        assert_eq!(route_params_before, route_params_after, "route params moved in phase 2");
    }

    #[test]
    fn transformer_layer_is_permutation_equivariant() {
        // Self-attention without positional input must commute with row
        // permutations — the architectural property distinguishing
        // DeepRoute's encoder from FDNET's order-sensitive RNN.
        let mut store = ParamStore::new(9);
        let layer = TransformerLayer::new(&mut store, "t", 8, 2);
        let n = 4;
        let data: Vec<f32> = (0..n * 8).map(|i| ((i * 13 % 29) as f32 - 14.0) / 14.0).collect();
        let mut t = Tape::new();
        let x = t.constant(n, 8, data.clone());
        let out = layer.forward(&mut t, &store, x);
        let base = t.data(out).to_vec();
        // swap rows 1 and 2
        let mut swapped = data.clone();
        for k in 0..8 {
            swapped.swap(8 + k, 16 + k);
        }
        let mut t2 = Tape::new();
        let x2 = t2.constant(n, 8, swapped);
        let out2 = layer.forward(&mut t2, &store, x2);
        let got = t2.data(out2);
        for k in 0..8 {
            assert!((base[8 + k] - got[16 + k]).abs() < 1e-5, "not equivariant");
            assert!((base[16 + k] - got[8 + k]).abs() < 1e-5, "not equivariant");
        }
    }
}
