//! DeepETA (Wu & Wu, AAAI 2019) — the *time-only* method of the
//! paper's Table I. It never predicts a route: arrival times are
//! regressed directly from spatial-temporal encodings of the query via
//! attention over the unvisited locations.
//!
//! The paper lists DeepETA in its design-space comparison but excludes
//! it from Tables III/IV (no route output). We implement it as an
//! extension so the library covers every row of Table I; evaluate it
//! with [`DeepEta::predict_times`] against time metrics only.

use m2g4rtp::NodeEmbedder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rtp_graph::{FeatureScaler, GraphBuilder, GraphConfig, MultiLevelGraph};
use rtp_sim::{Dataset, RtpSample};
use rtp_tensor::nn::{Linear, Mlp};
use rtp_tensor::optim::{Adam, Optimizer};
use rtp_tensor::parallel::{parallel_map_ordered_with, resolve_threads};
use rtp_tensor::{GradBuffer, ParamStore, Tape, TensorId};
use serde::{Deserialize, Serialize};

use m2g4rtp::TIME_SCALE;

/// DeepETA hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeepEtaConfig {
    /// Hidden width.
    pub d: usize,
    /// Discrete embedding width.
    pub d_disc: usize,
    /// Epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Samples per step.
    pub batch_size: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Seed.
    pub seed: u64,
    /// Worker threads for the data-parallel mini-batch loop
    /// (0 = all cores). Results are bit-identical for every setting.
    pub threads: usize,
}

impl DeepEtaConfig {
    /// Seconds-scale preset.
    pub fn quick(seed: u64) -> Self {
        Self {
            d: 32,
            d_disc: 8,
            epochs: 8,
            lr: 2e-3,
            batch_size: 16,
            patience: 3,
            seed,
            threads: 0,
        }
    }
}

/// The trained DeepETA model.
#[derive(Debug)]
pub struct DeepEta {
    config: DeepEtaConfig,
    store: ParamStore,
    node_emb: NodeEmbedder,
    att_q: Linear,
    att_k: Linear,
    att_v: Linear,
    head: Mlp,
    pipeline: Option<(GraphBuilder, FeatureScaler)>,
}

impl DeepEta {
    /// Builds an untrained model.
    pub fn new(config: DeepEtaConfig, dataset: &Dataset) -> Self {
        let mut store = ParamStore::new(config.seed ^ 0xE7A);
        let d = config.d;
        let node_emb = NodeEmbedder::new(
            &mut store,
            "eta.node_emb",
            rtp_graph::LOC_CONT_DIM,
            rtp_graph::GLOBAL_CONT_DIM,
            dataset.city.aois.len() + 1,
            dataset.couriers.len() + 1,
            config.d_disc,
            d,
        );
        let att_q = Linear::new_no_bias(&mut store, "eta.q", d, d);
        let att_k = Linear::new_no_bias(&mut store, "eta.k", d, d);
        let att_v = Linear::new_no_bias(&mut store, "eta.v", d, d);
        let head = Mlp::new(&mut store, "eta.head", &[2 * d, 2 * d, d, 1]);
        Self { config, store, node_emb, att_q, att_k, att_v, head, pipeline: None }
    }

    /// Forward: per-location scaled arrival times `[n, 1]`.
    ///
    /// One round of self-attention pools context over the other
    /// unvisited locations (the "similarity to other destinations"
    /// mechanism of the original paper), then an MLP regresses each
    /// location's gap from `[own ‖ pooled]`.
    fn forward(&self, t: &mut Tape, store: &ParamStore, g: &MultiLevelGraph) -> TensorId {
        let x = self.node_emb.embed(t, store, &g.locations, &g.global);
        let (n, d) = t.shape(x);
        let q = self.att_q.forward(t, store, x);
        let k = self.att_k.forward(t, store, x);
        let v = self.att_v.forward(t, store, x);
        let kt = t.transpose(k);
        let scores = t.matmul(q, kt);
        let scores = t.scale(scores, 1.0 / (d as f32).sqrt());
        let full = vec![true; n * n];
        let attn = t.masked_softmax_rows(scores, &full);
        let pooled = t.matmul(attn, v);
        let joint = t.concat_cols(&[x, pooled]);
        self.head.forward(t, store, joint)
    }

    /// Trains on MAE over the training split with validation early
    /// stopping.
    pub fn fit(&mut self, dataset: &Dataset) {
        let _fit_span = rtp_obs::span!("deepeta.fit");
        let g_val_mae = rtp_obs::metrics::global().gauge("deepeta.val_mae");
        let builder = GraphBuilder::new(GraphConfig::default());
        let scaler = FeatureScaler::fit(dataset, &builder);
        let prep = |samples: &[RtpSample]| -> Vec<MultiLevelGraph> {
            samples
                .iter()
                .map(|s| {
                    let mut g = builder.build(
                        &s.query,
                        &dataset.city,
                        &dataset.couriers[s.query.courier_id],
                    );
                    scaler.apply(&mut g);
                    g
                })
                .collect()
        };
        let train_graphs = prep(&dataset.train);
        let val_graphs = prep(&dataset.val);
        let mut opt = Adam::new(self.config.lr);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut indices: Vec<usize> = (0..train_graphs.len()).collect();
        let mut best = f64::MAX;
        let mut best_snap = self.store.snapshot();
        let mut since = 0usize;
        // Per-worker tapes reused across all samples and epochs, plus one
        // no-grad tape for the validation sweep.
        let workers =
            resolve_threads(self.config.threads).min(self.config.batch_size.max(1)).max(1);
        let mut worker_tapes: Vec<Tape> = (0..workers).map(|_| Tape::new()).collect();
        let mut val_tape = Tape::inference();
        for epoch in 0..self.config.epochs {
            let _epoch_span = rtp_obs::span!("deepeta.epoch", epoch);
            indices.shuffle(&mut rng);
            for batch in indices.chunks(self.config.batch_size) {
                self.store.zero_grad();
                let frozen = self.store.clone();
                let this = &*self;
                let shards = parallel_map_ordered_with(&mut worker_tapes, batch.len(), |t, k| {
                    let i = batch[k];
                    t.clear();
                    let pred = this.forward(t, &frozen, &train_graphs[i]);
                    let target: Vec<f32> =
                        dataset.train[i].truth.arrival.iter().map(|&v| v / TIME_SCALE).collect();
                    let y = t.constant(target.len(), 1, target);
                    let loss = t.mae_loss(pred, y);
                    let mut buffer = GradBuffer::zeros_like(&frozen);
                    t.backward_into(loss, &mut buffer);
                    buffer
                });
                for buffer in &shards {
                    self.store.accumulate(buffer);
                }
                self.store.scale_grad(1.0 / batch.len() as f32);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
            // validation MAE in minutes
            let mut sum = 0.0f64;
            let mut nl = 0usize;
            for (g, s) in val_graphs.iter().zip(&dataset.val) {
                val_tape.clear();
                let pred = self.forward(&mut val_tape, &self.store, g);
                for (p, y) in val_tape.data(pred).iter().zip(&s.truth.arrival) {
                    sum += ((p * TIME_SCALE) - y).abs() as f64;
                }
                nl += s.truth.arrival.len();
            }
            let mae = sum / nl.max(1) as f64;
            g_val_mae.set(mae);
            if mae < best {
                best = mae;
                best_snap = self.store.snapshot();
                since = 0;
            } else {
                since += 1;
                if since > self.config.patience {
                    break;
                }
            }
        }
        self.store.restore(&best_snap);
        self.pipeline = Some((builder, scaler));
    }

    /// Predicts per-location arrival gaps in minutes (aligned with the
    /// query's order indices). DeepETA has no route output.
    ///
    /// # Panics
    /// Panics if called before [`DeepEta::fit`].
    pub fn predict_times(&self, dataset: &Dataset, sample: &RtpSample) -> Vec<f32> {
        let (builder, scaler) = self.pipeline.as_ref().expect("DeepEta::fit must run first");
        let mut g =
            builder.build(&sample.query, &dataset.city, &dataset.couriers[sample.query.courier_id]);
        scaler.apply(&mut g);
        let mut t = Tape::inference();
        let pred = self.forward(&mut t, &self.store, &g);
        t.data(pred).iter().map(|&v| (v * TIME_SCALE).max(0.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_metrics::mae;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    #[test]
    fn deepeta_trains_and_beats_a_constant_predictor() {
        let d = DatasetBuilder::new(DatasetConfig::quick(161)).build();
        let mut m = DeepEta::new(DeepEtaConfig { epochs: 4, ..DeepEtaConfig::quick(1) }, &d);
        m.fit(&d);
        // constant baseline: the train-split mean arrival gap
        let mean: f32 = {
            let (mut s, mut n) = (0.0f64, 0usize);
            for t in &d.train {
                s += t.truth.arrival.iter().map(|&v| v as f64).sum::<f64>();
                n += t.truth.arrival.len();
            }
            (s / n as f64) as f32
        };
        let (mut eta_err, mut const_err) = (0.0, 0.0);
        for s in d.test.iter().take(60) {
            let p = m.predict_times(&d, s);
            assert_eq!(p.len(), s.query.num_locations());
            assert!(p.iter().all(|&v| v >= 0.0 && v.is_finite()));
            eta_err += mae(&p, &s.truth.arrival);
            let consts = vec![mean; p.len()];
            const_err += mae(&consts, &s.truth.arrival);
        }
        assert!(
            eta_err < const_err,
            "DeepETA ({eta_err:.1}) must beat the constant predictor ({const_err:.1})"
        );
    }

    #[test]
    #[should_panic(expected = "fit must run first")]
    fn predicting_untrained_deepeta_panics() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(162)).build();
        let m = DeepEta::new(DeepEtaConfig::quick(1), &d);
        let _ = m.predict_times(&d, &d.test[0]);
    }
}
