//! # rtp-baselines
//!
//! The seven comparison methods of the M²G4RTP paper (§V-B), each built
//! from scratch on the workspace substrates:
//!
//! | Baseline | Implementation |
//! |---|---|
//! | [`TimeGreedy`] | sort by deadline slack; fixed-speed time model |
//! | [`DistanceGreedy`] | step-wise nearest location; fixed-speed time model |
//! | [`OrToolsLike`] | nearest-neighbour + 2-opt shortest-route heuristic (the algorithm class OR-Tools' default routing search uses) |
//! | [`OSquare`] | from-scratch gradient-boosted regression trees ([`Gbdt`]); pointwise next-location scorer decoded step by step + a separately trained GBDT time regressor |
//! | [`DeepBaseline`] with [`DeepKind::DeepRoute`] | Transformer encoder + attention pointer decoder; plugged MLP time head trained separately |
//! | [`DeepBaseline`] with [`DeepKind::Fdnet`] | LSTM (RNN) encoder + pointer decoder; two-step time module consuming the *predicted* route |
//! | [`DeepBaseline`] with [`DeepKind::Graph2Route`] | edge-conditioned GCN encoder (single level) + pointer decoder; plugged MLP time head |
//!
//! All predictors implement [`Baseline`], returning the same
//! [`m2g4rtp::Prediction`] the core model produces, so the evaluation
//! harness treats every method uniformly.

mod deep;
mod deepeta;
mod gbdt;
mod heuristics;
mod osquare;

pub use deep::{DeepBaseline, DeepConfig, DeepKind};
pub use deepeta::{DeepEta, DeepEtaConfig};
pub use gbdt::{Gbdt, GbdtConfig};
pub use heuristics::{fixed_speed_times, DistanceGreedy, OrToolsLike, TimeGreedy};
pub use osquare::{OSquare, OSquareConfig};

use rtp_sim::{Dataset, RtpSample};

/// Common interface of every comparison method: given the dataset
/// context (city and fleet) and one sample's query, produce route and
/// time predictions at both levels.
///
/// `Send + Sync` so evaluation harnesses can fan predictors out across
/// threads (all implementations are pure functions of `&self`).
pub trait Baseline: Send + Sync {
    /// Display name used in tables.
    fn name(&self) -> &'static str;

    /// Predicts for one sample (only `sample.query` may be used;
    /// `sample.truth` is the evaluation label).
    fn predict(&self, dataset: &Dataset, sample: &RtpSample) -> m2g4rtp::Prediction;
}
