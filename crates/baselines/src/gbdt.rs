//! A from-scratch gradient-boosted regression-tree ensemble — the
//! XGBoost substitute powering the OSquare baseline.
//!
//! Least-squares boosting: each round fits a depth-limited CART
//! regression tree to the current residuals with exact greedy splits,
//! then shrinks its contribution by the learning rate. This captures
//! the properties the paper attributes to OSquare ("tree-based model,
//! lacks the ability to model spatial-temporal correlation, pointwise
//! next-location objective") without the engineering surface of real
//! XGBoost.

use serde::{Deserialize, Serialize};

/// Boosting hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage applied to every tree's output.
    pub learning_rate: f32,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self { n_trees: 60, max_depth: 4, learning_rate: 0.15, min_samples_leaf: 4 }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum TreeNode {
    Split { feature: usize, threshold: f32, left: usize, right: usize },
    Leaf { value: f32 },
}

/// One CART regression tree stored as a flat arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Tree {
    nodes: Vec<TreeNode>,
}

impl Tree {
    fn predict(&self, x: &[f32]) -> f32 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split { feature, threshold, left, right } => {
                    i = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Fits a tree to `(features, targets)` restricted to `indices`.
    fn fit(features: &[Vec<f32>], targets: &[f32], indices: Vec<usize>, cfg: &GbdtConfig) -> Self {
        let mut nodes = Vec::new();
        Self::build(features, targets, indices, 0, cfg, &mut nodes);
        Self { nodes }
    }

    fn build(
        features: &[Vec<f32>],
        targets: &[f32],
        indices: Vec<usize>,
        depth: usize,
        cfg: &GbdtConfig,
        nodes: &mut Vec<TreeNode>,
    ) -> usize {
        let mean = indices.iter().map(|&i| targets[i]).sum::<f32>() / indices.len() as f32;
        if depth >= cfg.max_depth || indices.len() < 2 * cfg.min_samples_leaf {
            nodes.push(TreeNode::Leaf { value: mean });
            return nodes.len() - 1;
        }
        match best_split(features, targets, &indices, cfg.min_samples_leaf) {
            None => {
                nodes.push(TreeNode::Leaf { value: mean });
                nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    indices.into_iter().partition(|&i| features[i][feature] <= threshold);
                let me = nodes.len();
                nodes.push(TreeNode::Leaf { value: mean }); // placeholder
                let left = Self::build(features, targets, left_idx, depth + 1, cfg, nodes);
                let right = Self::build(features, targets, right_idx, depth + 1, cfg, nodes);
                nodes[me] = TreeNode::Split { feature, threshold, left, right };
                me
            }
        }
    }
}

/// Exact greedy split search: for each feature, sort the node's samples
/// and scan prefix sums, maximising SSE reduction. Returns `None` when
/// no split satisfies the leaf-size constraint or improves SSE.
#[allow(clippy::needless_range_loop)] // index-based split scan is the clearest form
fn best_split(
    features: &[Vec<f32>],
    targets: &[f32],
    indices: &[usize],
    min_leaf: usize,
) -> Option<(usize, f32)> {
    let n = indices.len();
    let dim = features[indices[0]].len();
    let total_sum: f64 = indices.iter().map(|&i| targets[i] as f64).sum();
    let mut best: Option<(usize, f32, f64)> = None;
    let mut order: Vec<usize> = indices.to_vec();
    for f in 0..dim {
        order.sort_by(|&a, &b| {
            features[a][f].partial_cmp(&features[b][f]).expect("finite features")
        });
        let mut left_sum = 0.0f64;
        for k in 0..n - 1 {
            left_sum += targets[order[k]] as f64;
            let left_n = k + 1;
            let right_n = n - left_n;
            if left_n < min_leaf || right_n < min_leaf {
                continue;
            }
            // skip ties: cannot split between equal feature values
            if features[order[k]][f] == features[order[k + 1]][f] {
                continue;
            }
            let right_sum = total_sum - left_sum;
            // maximising sum-of-squared-means is equivalent to
            // minimising SSE
            let gain = left_sum * left_sum / left_n as f64 + right_sum * right_sum / right_n as f64;
            if best.is_none_or(|(_, _, g)| gain > g) {
                let threshold = 0.5 * (features[order[k]][f] + features[order[k + 1]][f]);
                best = Some((f, threshold, gain));
            }
        }
    }
    let (f, th, gain) = best?;
    // require strictly positive SSE reduction over the unsplit node
    let base = total_sum * total_sum / n as f64;
    (gain > base + 1e-9).then_some((f, th))
}

/// The boosted ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    trees: Vec<Tree>,
    base: f32,
    lr: f32,
}

impl Gbdt {
    /// Fits least-squares gradient boosting to the given rows.
    ///
    /// # Panics
    /// Panics if `features` is empty or lengths mismatch.
    pub fn fit(features: &[Vec<f32>], targets: &[f32], cfg: &GbdtConfig) -> Self {
        assert!(!features.is_empty(), "GBDT needs at least one sample");
        assert_eq!(features.len(), targets.len(), "feature/target length mismatch");
        let base = targets.iter().sum::<f32>() / targets.len() as f32;
        let mut residuals: Vec<f32> = targets.iter().map(|t| t - base).collect();
        let all: Vec<usize> = (0..features.len()).collect();
        let mut trees = Vec::with_capacity(cfg.n_trees);
        for _ in 0..cfg.n_trees {
            let tree = Tree::fit(features, &residuals, all.clone(), cfg);
            for (i, r) in residuals.iter_mut().enumerate() {
                *r -= cfg.learning_rate * tree.predict(&features[i]);
            }
            trees.push(tree);
        }
        Self { trees, base, lr: cfg.learning_rate }
    }

    /// Predicts one row.
    pub fn predict(&self, x: &[f32]) -> f32 {
        self.base + self.lr * self.trees.iter().map(|t| t.predict(x)).sum::<f32>()
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the ensemble holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synthetic(n: usize, seed: u64, f: impl Fn(&[f32]) -> f32) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f32>> =
            (0..n).map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0f32)).collect()).collect();
        let ys: Vec<f32> = xs.iter().map(|x| f(x)).collect();
        (xs, ys)
    }

    #[test]
    fn fits_a_step_function_exactly() {
        let (xs, ys) = synthetic(200, 1, |x| if x[0] > 0.2 { 5.0 } else { -3.0 });
        let g = Gbdt::fit(&xs, &ys, &GbdtConfig::default());
        let mse: f32 =
            xs.iter().zip(&ys).map(|(x, y)| (g.predict(x) - y) * (g.predict(x) - y)).sum::<f32>()
                / xs.len() as f32;
        assert!(mse < 0.01, "step function not learned: mse {mse}");
    }

    #[test]
    fn fits_a_smooth_nonlinear_function() {
        let (xs, ys) = synthetic(400, 2, |x| x[0] * x[0] + 0.5 * x[1] - x[2] * x[0]);
        let g = Gbdt::fit(&xs, &ys, &GbdtConfig { n_trees: 120, ..GbdtConfig::default() });
        let mse: f32 =
            xs.iter().zip(&ys).map(|(x, y)| (g.predict(x) - y) * (g.predict(x) - y)).sum::<f32>()
                / xs.len() as f32;
        let var: f32 = {
            let m = ys.iter().sum::<f32>() / ys.len() as f32;
            ys.iter().map(|y| (y - m) * (y - m)).sum::<f32>() / ys.len() as f32
        };
        assert!(mse < 0.1 * var, "R^2 too low: mse {mse} vs var {var}");
    }

    #[test]
    fn constant_targets_yield_constant_predictions() {
        let (xs, _) = synthetic(50, 3, |_| 0.0);
        let ys = vec![7.0f32; 50];
        let g = Gbdt::fit(&xs, &ys, &GbdtConfig::default());
        for x in &xs {
            assert!((g.predict(x) - 7.0).abs() < 1e-4);
        }
    }

    #[test]
    fn respects_min_leaf_on_tiny_data() {
        let xs = vec![vec![0.0f32], vec![1.0]];
        let ys = vec![0.0f32, 10.0];
        // min leaf 4 > n/2 -> every tree is a single leaf at the mean
        let g = Gbdt::fit(&xs, &ys, &GbdtConfig { min_samples_leaf: 4, ..Default::default() });
        assert!((g.predict(&[0.0]) - 5.0).abs() < 1e-4);
        assert!((g.predict(&[1.0]) - 5.0).abs() < 1e-4);
    }

    #[test]
    fn more_trees_do_not_hurt_training_fit() {
        let (xs, ys) = synthetic(200, 4, |x| (3.0 * x[0]).sin());
        let mse = |g: &Gbdt| {
            xs.iter().zip(&ys).map(|(x, y)| (g.predict(x) - y).powi(2)).sum::<f32>()
                / xs.len() as f32
        };
        let small = Gbdt::fit(&xs, &ys, &GbdtConfig { n_trees: 10, ..Default::default() });
        let large = Gbdt::fit(&xs, &ys, &GbdtConfig { n_trees: 80, ..Default::default() });
        assert!(mse(&large) <= mse(&small) + 1e-6);
        assert_eq!(large.len(), 80);
    }
}
