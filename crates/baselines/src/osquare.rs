//! OSquare (Zhang et al., IMWUT 2019): the tree-based baseline.
//!
//! The route model is a *pointwise* next-location scorer: at each
//! decoding step, every unvisited candidate is featurised against the
//! courier's current position/time and scored by a GBDT trained to
//! regress "is this the true next stop"; the argmax is emitted and the
//! whole route is produced step by step (§V-B: "OSquare outputs the
//! next location at one step, and the whole route is generated
//! recurrently"). A second, separately trained GBDT regresses arrival
//! times from route-position features — the paper's "we then train
//! another XGBoost to complete the time prediction".

use m2g4rtp::{derive_aoi_outputs, Prediction};
use rtp_sim::{Dataset, Point, RtpQuery, RtpSample, MINUTES_PER_KM_BASE};
use serde::{Deserialize, Serialize};

use crate::gbdt::{Gbdt, GbdtConfig};
use crate::Baseline;

/// OSquare hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OSquareConfig {
    /// Boosting config of the next-location scorer.
    pub route_gbdt: GbdtConfig,
    /// Boosting config of the time regressor.
    pub time_gbdt: GbdtConfig,
}

impl Default for OSquareConfig {
    fn default() -> Self {
        Self {
            route_gbdt: GbdtConfig { n_trees: 80, max_depth: 5, ..GbdtConfig::default() },
            time_gbdt: GbdtConfig { n_trees: 80, max_depth: 5, ..GbdtConfig::default() },
        }
    }
}

/// Featurises one candidate next stop given the decoding state.
/// Deliberately *pointwise*: no information about the other candidates
/// — the architectural limitation Table III attributes to OSquare.
fn candidate_features(
    query: &RtpQuery,
    cand: usize,
    cur_pos: Point,
    cur_aoi: Option<usize>,
    step: usize,
    remaining: usize,
) -> Vec<f32> {
    let o = &query.orders[cand];
    vec![
        o.pos.dist(&cur_pos),
        o.deadline - query.time,
        query.time - o.accept_time,
        o.pos.dist(&query.courier_pos),
        step as f32,
        remaining as f32,
        if cur_aoi == Some(o.aoi_id) { 1.0 } else { 0.0 },
    ]
}

/// Featurises one location for the time regressor, given its (predicted
/// or true) route position and the cumulative path distance to it.
fn time_features(query: &RtpQuery, loc: usize, position: usize, cum_dist: f32) -> Vec<f32> {
    let o = &query.orders[loc];
    vec![
        position as f32,
        cum_dist,
        cum_dist * MINUTES_PER_KM_BASE,
        o.pos.dist(&query.courier_pos),
        o.deadline - query.time,
        query.orders.len() as f32,
    ]
}

/// The trained OSquare baseline.
#[derive(Debug, Clone)]
pub struct OSquare {
    route_model: Gbdt,
    time_model: Gbdt,
}

impl OSquare {
    /// Trains both GBDTs on the training split.
    #[allow(clippy::needless_range_loop)] // candidate loop reads two parallel structures
    pub fn fit(dataset: &Dataset, config: &OSquareConfig) -> Self {
        // ---- route scorer: one row per (step, candidate) pair ----
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for s in &dataset.train {
            let q = &s.query;
            let mut pos = q.courier_pos;
            let mut cur_aoi = None;
            let mut visited = vec![false; q.orders.len()];
            for (step, &next) in s.truth.route.iter().enumerate() {
                let remaining = q.orders.len() - step;
                for cand in 0..q.orders.len() {
                    if visited[cand] {
                        continue;
                    }
                    feats.push(candidate_features(q, cand, pos, cur_aoi, step, remaining));
                    targets.push(if cand == next { 1.0 } else { 0.0 });
                }
                visited[next] = true;
                pos = q.orders[next].pos;
                cur_aoi = Some(q.orders[next].aoi_id);
            }
        }
        let route_model = Gbdt::fit(&feats, &targets, &config.route_gbdt);

        // ---- time regressor: trained on true routes/arrivals ----
        let mut tfeats = Vec::new();
        let mut ttargets = Vec::new();
        for s in &dataset.train {
            let q = &s.query;
            let mut pos = q.courier_pos;
            let mut cum = 0.0f32;
            for (position, &loc) in s.truth.route.iter().enumerate() {
                cum += q.orders[loc].pos.dist(&pos);
                pos = q.orders[loc].pos;
                tfeats.push(time_features(q, loc, position, cum));
                ttargets.push(s.truth.arrival[loc]);
            }
        }
        let time_model = Gbdt::fit(&tfeats, &ttargets, &config.time_gbdt);

        Self { route_model, time_model }
    }

    /// Decodes the route greedily with the pointwise scorer.
    fn decode_route(&self, q: &RtpQuery) -> Vec<usize> {
        let n = q.orders.len();
        let mut visited = vec![false; n];
        let mut route = Vec::with_capacity(n);
        let mut pos = q.courier_pos;
        let mut cur_aoi = None;
        for step in 0..n {
            let remaining = n - step;
            let (best, _) = (0..n)
                .filter(|&i| !visited[i])
                .map(|i| {
                    let f = candidate_features(q, i, pos, cur_aoi, step, remaining);
                    (i, self.route_model.predict(&f))
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
                .expect("unvisited candidate remains");
            visited[best] = true;
            route.push(best);
            pos = q.orders[best].pos;
            cur_aoi = Some(q.orders[best].aoi_id);
        }
        route
    }
}

impl Baseline for OSquare {
    fn name(&self) -> &'static str {
        "OSquare"
    }

    fn predict(&self, _dataset: &Dataset, sample: &RtpSample) -> Prediction {
        let q = &sample.query;
        let route = self.decode_route(q);
        // times from the predicted route (two-step error accumulation)
        let mut times = vec![0.0f32; route.len()];
        let mut pos = q.courier_pos;
        let mut cum = 0.0f32;
        for (position, &loc) in route.iter().enumerate() {
            cum += q.orders[loc].pos.dist(&pos);
            pos = q.orders[loc].pos;
            times[loc] = self.time_model.predict(&time_features(q, loc, position, cum)).max(0.0);
        }
        let loc_to_aoi = q.order_aoi_indices();
        let m = q.distinct_aois().len();
        let (aoi_route, aoi_times) = derive_aoi_outputs(&route, &times, &loc_to_aoi, m);
        Prediction { aoi_route, aoi_times, route, times }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_metrics::krc;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    #[test]
    fn osquare_trains_and_predicts_valid_routes() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(91)).build();
        let model = OSquare::fit(&d, &OSquareConfig::default());
        for s in d.test.iter().take(8) {
            let p = model.predict(&d, s);
            let n = s.query.num_locations();
            assert_eq!(p.route.len(), n);
            let mut seen = vec![false; n];
            for &i in &p.route {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert!(p.times.iter().all(|&t| t >= 0.0 && t.is_finite()));
        }
    }

    #[test]
    fn osquare_beats_chance_on_route_order() {
        let d = DatasetBuilder::new(DatasetConfig::quick(92)).build();
        let model = OSquare::fit(&d, &OSquareConfig::default());
        let mean_krc: f64 =
            d.test.iter().map(|s| krc(&model.predict(&d, s).route, &s.truth.route)).sum::<f64>()
                / d.test.len() as f64;
        assert!(mean_krc > 0.2, "OSquare KRC {mean_krc} not above chance");
    }
}
