//! The training-free baselines: Time-Greedy, Distance-Greedy and the
//! OR-Tools-style shortest-route heuristic.
//!
//! All three share the paper's naive time model: "set a fixed speed for
//! the courier; the time prediction is calculated by dividing the
//! distance between locations by the fixed speed" — no service times,
//! which is precisely why their time predictions are poor (Table IV).

use m2g4rtp::{derive_aoi_outputs, Prediction};
use rtp_sim::{Dataset, Point, RtpQuery, RtpSample, MINUTES_PER_KM_BASE};

use crate::Baseline;

/// Fixed-speed arrival gaps along `route`: cumulative Euclidean
/// distance from the courier position times the nominal pace.
/// Returns times aligned with location index.
pub fn fixed_speed_times(query: &RtpQuery, route: &[usize]) -> Vec<f32> {
    let mut times = vec![0.0f32; route.len()];
    let mut pos = query.courier_pos;
    let mut clock = 0.0f32;
    for &i in route {
        clock += query.orders[i].pos.dist(&pos) * MINUTES_PER_KM_BASE;
        times[i] = clock;
        pos = query.orders[i].pos;
    }
    times
}

fn to_prediction(query: &RtpQuery, route: Vec<usize>) -> Prediction {
    let times = fixed_speed_times(query, &route);
    let loc_to_aoi = query.order_aoi_indices();
    let m = query.distinct_aois().len();
    let (aoi_route, aoi_times) = derive_aoi_outputs(&route, &times, &loc_to_aoi, m);
    Prediction { aoi_route, aoi_times, route, times }
}

/// Sorts the locations by their promised deadline ("remaining time
/// until the deadline", §V-B).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeGreedy;

impl Baseline for TimeGreedy {
    fn name(&self) -> &'static str {
        "Time-Greedy"
    }

    fn predict(&self, _dataset: &Dataset, sample: &RtpSample) -> Prediction {
        let q = &sample.query;
        let mut route: Vec<usize> = (0..q.orders.len()).collect();
        route.sort_by(|&a, &b| {
            q.orders[a].deadline.partial_cmp(&q.orders[b].deadline).expect("finite deadlines")
        });
        to_prediction(q, route)
    }
}

/// Repeatedly visits the nearest unvisited location (§V-B).
#[derive(Debug, Clone, Copy, Default)]
pub struct DistanceGreedy;

impl Baseline for DistanceGreedy {
    fn name(&self) -> &'static str {
        "Distance-Greedy"
    }

    fn predict(&self, _dataset: &Dataset, sample: &RtpSample) -> Prediction {
        let q = &sample.query;
        let route = nearest_neighbour_route(q.courier_pos, q);
        to_prediction(q, route)
    }
}

/// A shortest-route heuristic of the same class as OR-Tools' default
/// routing search: nearest-neighbour construction followed by 2-opt
/// improvement of the open path (start fixed at the courier position,
/// free end).
#[derive(Debug, Clone, Copy)]
pub struct OrToolsLike {
    /// Maximum 2-opt improvement sweeps.
    pub max_sweeps: usize,
}

impl Default for OrToolsLike {
    fn default() -> Self {
        Self { max_sweeps: 16 }
    }
}

impl OrToolsLike {
    /// Total open-path length of `route` from `start`.
    pub fn path_length(start: Point, query: &RtpQuery, route: &[usize]) -> f32 {
        let mut pos = start;
        let mut total = 0.0;
        for &i in route {
            total += query.orders[i].pos.dist(&pos);
            pos = query.orders[i].pos;
        }
        total
    }

    /// Runs 2-opt on an initial route, reversing segments while any
    /// reversal shortens the path (bounded by `max_sweeps`).
    #[allow(clippy::ptr_arg)] // reversal needs the owned Vec semantics at call sites
    fn two_opt(&self, start: Point, query: &RtpQuery, route: &mut Vec<usize>) {
        let n = route.len();
        if n < 3 {
            return;
        }
        for _ in 0..self.max_sweeps {
            let mut improved = false;
            for a in 0..n - 1 {
                for b in a + 1..n {
                    let pos = |i: usize| query.orders[route[i]].pos;
                    // reversing route[a..=b] changes two boundary edges
                    let before_a = if a == 0 { start } else { pos(a - 1) };
                    let old = before_a.dist(&pos(a))
                        + if b + 1 < n { pos(b).dist(&pos(b + 1)) } else { 0.0 };
                    let new = before_a.dist(&pos(b))
                        + if b + 1 < n { pos(a).dist(&pos(b + 1)) } else { 0.0 };
                    if new + 1e-6 < old {
                        route[a..=b].reverse();
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
}

impl Baseline for OrToolsLike {
    fn name(&self) -> &'static str {
        "OR-Tools"
    }

    fn predict(&self, _dataset: &Dataset, sample: &RtpSample) -> Prediction {
        let q = &sample.query;
        let mut route = nearest_neighbour_route(q.courier_pos, q);
        self.two_opt(q.courier_pos, q, &mut route);
        to_prediction(q, route)
    }
}

/// Greedy nearest-neighbour path construction.
fn nearest_neighbour_route(start: Point, query: &RtpQuery) -> Vec<usize> {
    let n = query.orders.len();
    let mut route = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut pos = start;
    for _ in 0..n {
        let (next, _) = (0..n)
            .filter(|&i| !visited[i])
            .map(|i| (i, query.orders[i].pos.dist(&pos)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("unvisited location remains");
        visited[next] = true;
        pos = query.orders[next].pos;
        route.push(next);
    }
    route
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    fn dataset() -> Dataset {
        DatasetBuilder::new(DatasetConfig::tiny(81)).build()
    }

    fn assert_valid(p: &Prediction, sample: &RtpSample) {
        let n = sample.query.num_locations();
        let m = sample.query.distinct_aois().len();
        assert_eq!(p.route.len(), n);
        assert_eq!(p.times.len(), n);
        assert_eq!(p.aoi_route.len(), m);
        let mut seen = vec![false; n];
        for &i in &p.route {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(p.times.iter().all(|&t| t >= 0.0 && t.is_finite()));
    }

    #[test]
    fn all_heuristics_emit_valid_predictions() {
        let d = dataset();
        for s in d.test.iter().take(10) {
            assert_valid(&TimeGreedy.predict(&d, s), s);
            assert_valid(&DistanceGreedy.predict(&d, s), s);
            assert_valid(&OrToolsLike::default().predict(&d, s), s);
        }
    }

    #[test]
    fn time_greedy_orders_by_deadline() {
        let d = dataset();
        let s = &d.test[0];
        let p = TimeGreedy.predict(&d, s);
        for w in p.route.windows(2) {
            assert!(s.query.orders[w[0]].deadline <= s.query.orders[w[1]].deadline);
        }
    }

    #[test]
    fn distance_greedy_first_step_is_nearest() {
        let d = dataset();
        let s = &d.test[0];
        let p = DistanceGreedy.predict(&d, s);
        let dists: Vec<f32> =
            s.query.orders.iter().map(|o| o.pos.dist(&s.query.courier_pos)).collect();
        let nearest =
            (0..dists.len()).min_by(|&a, &b| dists[a].partial_cmp(&dists[b]).unwrap()).unwrap();
        assert_eq!(p.route[0], nearest);
    }

    #[test]
    fn two_opt_never_lengthens_the_path() {
        let d = dataset();
        let or = OrToolsLike::default();
        for s in d.test.iter().take(20) {
            let q = &s.query;
            let nn = nearest_neighbour_route(q.courier_pos, q);
            let nn_len = OrToolsLike::path_length(q.courier_pos, q, &nn);
            let p = or.predict(&d, s);
            let opt_len = OrToolsLike::path_length(q.courier_pos, q, &p.route);
            assert!(opt_len <= nn_len + 1e-4, "2-opt worsened: {nn_len} -> {opt_len}");
        }
    }

    #[test]
    fn or_tools_beats_deadline_order_on_distance() {
        // The shortest-path heuristic must on average produce shorter
        // paths than deadline ordering (which ignores geometry).
        let d = dataset();
        let or = OrToolsLike::default();
        let (mut or_total, mut tg_total) = (0.0, 0.0);
        for s in &d.test {
            let q = &s.query;
            or_total += OrToolsLike::path_length(q.courier_pos, q, &or.predict(&d, s).route);
            tg_total +=
                OrToolsLike::path_length(q.courier_pos, q, &TimeGreedy.predict(&d, s).route);
        }
        assert!(or_total < tg_total, "OR-Tools {or_total} not shorter than Time-Greedy {tg_total}");
    }

    #[test]
    fn fixed_speed_times_are_cumulative_along_route() {
        let d = dataset();
        let s = &d.test[0];
        let p = DistanceGreedy.predict(&d, s);
        for w in p.route.windows(2) {
            assert!(p.times[w[1]] >= p.times[w[0]], "times must not decrease along route");
        }
    }
}
