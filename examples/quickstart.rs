//! Quickstart: generate a synthetic instant-logistics world, train
//! M²G4RTP for a few epochs, and jointly predict the route and arrival
//! times of one courier's unvisited locations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_metrics::{krc, mae};
use rtp_sim::{DatasetBuilder, DatasetConfig};

fn main() {
    // 1. A small synthetic city with couriers, AOIs and pick-up orders.
    let dataset = DatasetBuilder::new(DatasetConfig::quick(42)).build();
    println!(
        "dataset: {} train / {} val / {} test samples, {} AOIs, {} couriers",
        dataset.train.len(),
        dataset.val.len(),
        dataset.test.len(),
        dataset.city.aois.len(),
        dataset.couriers.len()
    );

    // 2. Train the joint route-and-time model.
    let mut model = M2G4Rtp::new(ModelConfig::for_dataset(&dataset), 7);
    println!("model: {} parameters", model.num_parameters());
    let report = Trainer::new(TrainConfig { epochs: 10, verbose: true, ..TrainConfig::quick() })
        .fit(&mut model, &dataset);
    println!(
        "trained {} epochs in {:.1}s — best val KRC {:.3}, MAE {:.1} min",
        report.epochs_run, report.train_seconds, report.best_val_krc, report.best_val_mae
    );

    // 3. Joint inference on one unseen query.
    let sample = &dataset.test[0];
    let prediction = model.predict_sample(&dataset, sample);
    println!(
        "\nquery: courier {} with {} unvisited locations across {} AOIs",
        sample.query.courier_id,
        sample.query.num_locations(),
        sample.query.distinct_aois().len()
    );
    println!("predicted AOI sequence: {:?}", prediction.aoi_route);
    println!("predicted route:        {:?}", prediction.route);
    println!("actual route:           {:?}", sample.truth.route);
    println!("route KRC:              {:.3}", krc(&prediction.route, &sample.truth.route));
    println!("arrival-time MAE:       {:.1} min", mae(&prediction.times, &sample.truth.arrival));
    for (step, &loc) in prediction.route.iter().enumerate() {
        println!(
            "  stop {:>2}: location {:>2} (AOI {:>3})  eta {:>5.1} min  (actual {:>5.1})",
            step + 1,
            loc,
            sample.query.orders[loc].aoi_id,
            prediction.times[loc],
            sample.truth.arrival[loc]
        );
    }
}
