//! Simulates one courier's working day and renders the served route as
//! an ASCII map, making the paper's central observation visible:
//! couriers serve AOIs as contiguous blocks (§V.A measures ~51 location
//! transfers per day vs only ~6 AOI transfers).
//!
//! ```sh
//! cargo run --release --example courier_day
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtp_sim::{BehaviorConfig, BehaviorSim, City, CityConfig, Order, Point, RtpQuery, Weather};

fn main() {
    let city = City::generate(&CityConfig { n_aois: 80, n_districts: 6, ..CityConfig::default() });
    let couriers = city.generate_couriers(1, 14, 99);
    let courier = &couriers[0];
    let mut rng = StdRng::seed_from_u64(5);

    // A morning batch: ~7 AOIs, ~6-8 orders each.
    let mut orders = Vec::new();
    let mut pool = courier.territory.clone();
    for _ in 0..7 {
        let aoi = city.aoi(pool.swap_remove(rng.gen_range(0..pool.len())));
        for _ in 0..rng.gen_range(5..9) {
            let ang = rng.gen_range(0.0..std::f32::consts::TAU);
            let r = aoi.radius * rng.gen_range(0.0f32..1.0).sqrt();
            orders.push(Order {
                pos: Point { x: aoi.center.x + r * ang.cos(), y: aoi.center.y + r * ang.sin() },
                aoi_id: aoi.id,
                deadline: 480.0 + rng.gen_range(60.0..420.0),
                accept_time: 470.0,
            });
        }
    }
    let query = RtpQuery {
        courier_id: courier.id,
        time: 480.0,
        courier_pos: city.aoi(courier.territory[0]).center,
        orders,
        weather: Weather::Sunny,
        weekday: 1,
    };

    let sim = BehaviorSim::new(&city, BehaviorConfig::default());
    let truth = sim.simulate(&query, courier, &mut rng);

    println!(
        "courier {} day: {} orders across {} AOIs (speed {:.1} km/h)",
        courier.id,
        query.orders.len(),
        query.distinct_aois().len(),
        courier.speed_kmh
    );

    // Render the served sequence with its AOI blocks.
    let order_aoi = query.order_aoi_indices();
    let mut transfers = 0;
    println!("\nserved sequence (· = same AOI as previous stop, ! = AOI transfer):");
    let mut prev: Option<usize> = None;
    for &i in &truth.route {
        let mark = match prev {
            Some(p) if order_aoi[p] == order_aoi[i] => '·',
            Some(_) => {
                transfers += 1;
                '!'
            }
            None => '>',
        };
        println!(
            "  {mark} t={:>6.1} min  AOI {:>3}  location {:>2}  ({:.2}, {:.2})",
            truth.arrival[i],
            query.orders[i].aoi_id,
            i,
            query.orders[i].pos.x,
            query.orders[i].pos.y
        );
        prev = Some(i);
    }
    println!(
        "\nlocation transfers: {}   AOI transfers: {}   (paper: ~51 vs ~6.2)",
        query.orders.len() - 1,
        transfers
    );

    // ASCII map of the day (letters = AOI blocks in visit order).
    let aois = query.distinct_aois();
    let first_seen: Vec<usize> = truth.aoi_route.clone();
    let label = |aoi_index: usize| {
        (b'A' + first_seen.iter().position(|&a| a == aoi_index).unwrap_or(25) as u8) as char
    };
    let (w, h) = (64usize, 24usize);
    let mut canvas = vec![vec![' '; w]; h];
    let (min_x, max_x, min_y, max_y) =
        query.orders.iter().fold((f32::MAX, f32::MIN, f32::MAX, f32::MIN), |(a, b, c, d), o| {
            (a.min(o.pos.x), b.max(o.pos.x), c.min(o.pos.y), d.max(o.pos.y))
        });
    for (i, o) in query.orders.iter().enumerate() {
        let cx = (((o.pos.x - min_x) / (max_x - min_x).max(1e-6)) * (w - 1) as f32) as usize;
        let cy = (((o.pos.y - min_y) / (max_y - min_y).max(1e-6)) * (h - 1) as f32) as usize;
        canvas[h - 1 - cy][cx] = label(order_aoi[i]);
    }
    println!("\nmap (letters are AOIs in visit order):");
    for row in canvas {
        println!("  {}", row.into_iter().collect::<String>());
    }
    println!(
        "\nAOI visit order: {}",
        aois.iter()
            .enumerate()
            .map(|(k, id)| format!("{}=AOI{}", label(k), id))
            .collect::<Vec<_>>()
            .join("  ")
    );
}
