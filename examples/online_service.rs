//! The §VI deployment demo: stands up the in-process RTP service
//! (feature extraction → inference → applications) and drives it with a
//! stream of simulated requests, printing what the two launched
//! products would show — the courier's Intelligent Order Sorting list
//! (Fig. 8a) and the user's Minute-Level ETA messages (Fig. 8b).
//!
//! ```sh
//! cargo run --release --example online_service
//! ```

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_eval::service::RtpService;
use rtp_metrics::{hr_at_k, krc, mae, rmse};
use rtp_sim::{DatasetBuilder, DatasetConfig};

fn main() {
    // Offline part: train the model that backs the inference layer,
    // persist it (the paper's "pre-trained model packaged as M2G4RTP
    // Service module"), and reload it as the online service would.
    let dataset = DatasetBuilder::new(DatasetConfig::quick(2023)).build();
    let mut model = M2G4Rtp::new(ModelConfig::for_dataset(&dataset), 11);
    eprintln!("training the service model...");
    Trainer::new(TrainConfig { epochs: 10, ..TrainConfig::quick() }).fit(&mut model, &dataset);
    let artifact = serde_json::to_string(&model.to_saved()).expect("serialise model");
    eprintln!("packaged model artifact: {:.1} MB", artifact.len() as f64 / 1e6);
    let model = M2G4Rtp::from_saved(serde_json::from_str(&artifact).expect("load model"));
    let service = RtpService::new(model);

    // Online part: a stream of RTP requests (here: test-split queries).
    let mut latencies = Vec::new();
    for (k, sample) in dataset.test.iter().take(5).enumerate() {
        let courier = &dataset.couriers[sample.query.courier_id];
        let resp =
            service.handle(&dataset.city, courier, &sample.query).expect("aligned prediction");
        latencies.push(resp.latency_ms);

        println!("--- request {k}: courier {} at t={:.0} min ---", courier.id, sample.query.time);
        println!("Intelligent Order Sorting (courier app):");
        for (rank, &o) in resp.sorted_orders.iter().enumerate() {
            println!(
                "  {:>2}. order #{o:<3} AOI {:<4} deadline t+{:.0} min",
                rank + 1,
                sample.query.orders[o].aoi_id,
                sample.query.orders[o].deadline - sample.query.time
            );
        }
        println!("Minute-Level ETA (user push messages):");
        for eta in resp.etas.iter().take(3) {
            println!("  order #{:<3} -> \"{}\"", eta.order_index, eta.text);
        }
        println!("handled in {:.2} ms\n", resp.latency_ms);
    }
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    println!(
        "served {} requests, mean latency {mean:.2} ms (the production system at Cainiao \
         handles hundreds of thousands of such queries per day)",
        latencies.len()
    );

    // §VI-style aggregate "online" quality over a larger request stream
    // (the paper reports HR@3 66.89 / KRC 0.61 for order sorting and
    // RMSE 31.11 / MAE 22.40 for the minute-level ETA in Shanghai).
    let (mut hr3, mut kc, mut preds, mut labels) = (0.0, 0.0, Vec::new(), Vec::new());
    let stream: Vec<_> = dataset.test.iter().take(100).collect();
    for sample in &stream {
        let courier = &dataset.couriers[sample.query.courier_id];
        let resp =
            service.handle(&dataset.city, courier, &sample.query).expect("aligned prediction");
        hr3 += hr_at_k(&resp.sorted_orders, &sample.truth.route, 3);
        kc += krc(&resp.sorted_orders, &sample.truth.route);
        for e in &resp.etas {
            preds.push(e.eta_minutes);
            labels.push(sample.truth.arrival[e.order_index]);
        }
    }
    let n = stream.len() as f64;
    println!("\naggregate service quality over {} requests:", stream.len());
    println!("  Intelligent Order Sorting: HR@3 {:.2}%  KRC {:.3}", hr3 / n * 100.0, kc / n);
    println!(
        "  Minute-Level ETA:          RMSE {:.2}  MAE {:.2} (minutes)",
        rmse(&preds, &labels),
        mae(&preds, &labels)
    );
}
