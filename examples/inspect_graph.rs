//! Inspects the multi-level graph the model consumes: node features
//! (Eqs. 12–13), edge features and k-NN connectivity (Eqs. 14–16), the
//! location→AOI membership edges, and what the GAT-e encoder does to
//! them — a tour of the substrate APIs.
//!
//! ```sh
//! cargo run --release --example inspect_graph
//! ```

use m2g4rtp::{EdgeEmbedder, GatEncoder, NodeEmbedder};
use rtp_graph::{FeatureScaler, GraphBuilder, GraphConfig};
use rtp_sim::{DatasetBuilder, DatasetConfig};
use rtp_tensor::{ParamStore, Tape};

fn main() {
    let dataset = DatasetBuilder::new(DatasetConfig::tiny(8)).build();
    let sample = &dataset.train[0];
    let courier = &dataset.couriers[sample.query.courier_id];

    // Build and standardise the multi-level graph.
    let builder = GraphBuilder::new(GraphConfig { k_neighbors: 3 });
    let scaler = FeatureScaler::fit(&dataset, &builder);
    let mut g = builder.build(&sample.query, &dataset.city, courier);

    println!("multi-level graph: {} location nodes, {} AOI nodes", g.locations.n, g.aois.n);
    println!("location -> AOI membership (E^la): {:?}", g.loc_to_aoi);

    println!("\nraw location node features (Eq. 12): [x, y, dist, deadline-t, t-accept]");
    for i in 0..g.locations.n.min(4) {
        let row = &g.locations.cont[i * g.locations.cont_dim..(i + 1) * g.locations.cont_dim];
        println!(
            "  l{i}: {row:?}  (AOI id {}, type {})",
            g.locations.aoi_ids[i], g.locations.aoi_types[i]
        );
    }

    println!("\nconnectivity (Eq. 15; row i = neighbours location i attends to):");
    for i in 0..g.locations.n.min(6) {
        let nbrs: Vec<usize> =
            (0..g.locations.n).filter(|&j| g.locations.adj[i * g.locations.n + j]).collect();
        println!("  l{i}: degree {} -> {nbrs:?}", g.locations.degree(i));
    }

    scaler.apply(&mut g);
    println!("\nafter train-split standardisation, first location row:");
    println!("  {:?}", &g.locations.cont[..g.locations.cont_dim]);

    // Run just the encoder stack to see representation shapes.
    let mut store = ParamStore::new(1);
    let d = 32;
    let node_emb = NodeEmbedder::new(
        &mut store,
        "demo",
        g.locations.cont_dim,
        rtp_graph::GLOBAL_CONT_DIM,
        dataset.city.aois.len() + 1,
        dataset.couriers.len() + 1,
        8,
        d,
    );
    let edge_emb = EdgeEmbedder::new(&mut store, "demo_e", g.locations.edge_dim, d);
    let encoder = GatEncoder::new(&mut store, "demo_enc", d, 4, 2, 0.2);
    let mut tape = Tape::new();
    let x = node_emb.embed(&mut tape, &store, &g.locations, &g.global);
    let z = edge_emb.embed(&mut tape, &store, &g.locations);
    let encoded = encoder.forward(&mut tape, &store, x, z, &g.locations.adj);
    let (n, dim) = tape.shape(encoded);
    println!("\nGAT-e encoder output: [{n}, {dim}] ({} tape nodes recorded)", tape.len());
    println!(
        "first encoded location representation (8 of {dim} dims): {:?}",
        &tape.data(encoded)[..8]
    );
}
