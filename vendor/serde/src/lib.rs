//! Offline vendored subset of the `serde` API.
//!
//! The workspace builds without network access, so serialization is
//! provided by this small local implementation instead of the real
//! `serde`. The public *surface* matches what the workspace uses —
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::{to_string,
//! to_string_pretty, from_str}` — while the internal data model is a
//! simple JSON [`Value`] tree rather than serde's visitor machinery.
//!
//! [`Serialize`] converts a value into a [`Value`]; [`Deserialize`]
//! rebuilds a value from one. The derive macros in `serde_derive`
//! generate both impls for named-field structs and for enums with unit
//! and/or struct variants (externally tagged, like upstream serde).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number, preserving the integer/float distinction so that
/// `u64` seeds round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Signed negative integer.
    I(i64),
    /// Single-precision float (serialized via its shortest exact
    /// decimal form).
    F32(f32),
    /// Double-precision float.
    F64(f64),
}

impl Number {
    /// The number as an `f64` (lossy only for extreme `u64`/`i64`).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F32(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The number as a `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) if v >= 0 => Some(v as u64),
            Number::F32(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f32 => {
                Some(v as u64)
            }
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The number as an `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) if v <= i64::MAX as u64 => Some(v as i64),
            Number::I(v) => Some(v),
            Number::F32(v)
                if v.fract() == 0.0 && (i64::MIN as f32..=i64::MAX as f32).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::F64(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            _ => None,
        }
    }
}

/// An in-memory JSON document. Objects preserve insertion order so
/// serialization is deterministic and matches field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered list of key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an ordered key/value list, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Conversion into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// A `Value` round-trips through itself, so callers can parse a document
// once, inspect it structurally (e.g. dispatch on a key), and then
// finish deserializing with `Deserialize::from_value`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.type_name()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Num(n) => n.as_u64(),
                    _ => None,
                };
                let n = n.ok_or_else(|| {
                    Error::msg(format!(
                        "expected unsigned integer, found {}",
                        v.type_name()
                    ))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Num(n) => n.as_i64(),
                    _ => None,
                };
                let n = n.ok_or_else(|| {
                    Error::msg(format!("expected integer, found {}", v.type_name()))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F32(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(Number::F32(f)) => Ok(*f),
            Value::Num(n) => Ok(n.as_f64() as f32),
            other => Err(Error::msg(format!("expected number, found {}", other.type_name()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            other => Err(Error::msg(format!("expected number, found {}", other.type_name()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {}", other.type_name()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {}", other.type_name()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::msg("expected array for tuple"))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(Error::msg(format!(
                        "expected tuple of length {expect}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl<K: ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object for map"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut pairs: Vec<(&String, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(pairs.into_iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object for map"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

/// Extracts and deserializes a named field from an object value.
/// Used by the generated `Deserialize` impls.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(inner) => T::from_value(inner).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}
