//! Offline vendored subset of the `rayon` API: `par_iter()` over
//! slices and `Vec`s with `map`/`filter_map` + `collect`.
//!
//! Work is executed on scoped OS threads over contiguous chunks and
//! the per-chunk outputs are concatenated in chunk order, so `collect`
//! preserves input order exactly like rayon's indexed parallel
//! iterators — parallelism never changes results.

/// Number of worker threads used for parallel iteration.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over `items` on up to [`current_num_threads`] scoped
/// threads, returning per-item outputs in input order. `f` may return
/// values borrowing from the source slice (lifetime `'data`).
fn chunked_map<'data, T: Sync, R: Send>(
    items: &'data [T],
    f: impl Fn(&'data T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunk_outputs: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                let f = &f;
                scope.spawn(move || items[lo..hi].iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        chunk_outputs = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    chunk_outputs.into_iter().flatten().collect()
}

/// A pending parallel iteration over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

/// A mapped parallel iteration, ready to `collect`.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

/// A filter-mapped parallel iteration, ready to `collect`.
pub struct ParFilterMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }

    /// Maps each item in parallel, keeping only `Some` outputs.
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'data, T, F>
    where
        F: Fn(&'data T) -> Option<R> + Sync,
        R: Send,
    {
        ParFilterMap { items: self.items, f }
    }
}

/// Conversion from a parallel-map pipeline's output vector, allowing
/// `collect::<Vec<_>>()` call sites to compile unchanged.
pub trait FromParallelIterator<T>: Sized {
    /// Builds the collection from already-ordered items.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Runs the map and collects outputs in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(chunked_map(self.items, self.f))
    }
}

impl<'data, T, R, F> ParFilterMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> Option<R> + Sync,
{
    /// Runs the filter-map and collects the surviving outputs in input
    /// order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let mapped = chunked_map(self.items, self.f);
        C::from_ordered_vec(mapped.into_iter().flatten().collect())
    }
}

/// Entry points mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{FromParallelIterator, IntoParallelRefIterator};
}

/// `par_iter()` provider for `&self` collections.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: Sync + 'data;

    /// Starts a parallel iteration over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, input.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order() {
        let input: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = input.par_iter().filter_map(|&x| (x % 3 == 0).then_some(x)).collect();
        assert_eq!(out, input.iter().copied().filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = vec![7u8];
        let out: Vec<u8> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
