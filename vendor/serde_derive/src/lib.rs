//! Offline vendored `#[derive(Serialize, Deserialize)]` macros for the
//! local `serde` subset.
//!
//! The input item is parsed directly from the `proc_macro` token stream
//! (no `syn`/`quote` — they are unavailable offline). Supported shapes,
//! which cover every derive site in this workspace:
//!
//! - structs with named fields,
//! - enums whose variants are unit (`Full`) or struct-like
//!   (`Split { feature: usize, .. }`), serialized externally tagged
//!   exactly like upstream serde: `"Full"` / `{"Split": {...}}`.
//!
//! Generics, tuple structs, tuple variants and `#[serde(...)]`
//! attributes are rejected with a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item the derive is attached to.
enum Item {
    /// A named-field struct and its field names.
    Struct { name: String, fields: Vec<String> },
    /// An enum and its variants.
    Enum { name: String, variants: Vec<Variant> },
}

/// One enum variant: unit (`fields == None`) or struct-like.
struct Variant {
    name: String,
    fields: Option<Vec<String>>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips one attribute (`#[...]`) if the cursor is on one.
fn skip_attr(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        let is_pound = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        let is_group =
            matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket);
        if is_pound && is_group {
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Extracts the field names from the token stream of a `{ ... }` body
/// with named fields. Commas nested inside angle brackets or groups do
/// not split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attr(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found `{other}`")),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Extracts the variants from the token stream of an enum `{ ... }`
/// body.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attr(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let mut fields = None;
        if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    fields = Some(parse_named_fields(g.stream())?);
                    i += 1;
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    return Err(format!("tuple variant `{name}` is not supported"));
                }
                TokenTree::Punct(p) if p.as_char() == '=' => {
                    return Err(format!("explicit discriminant on `{name}` is not supported"));
                }
                _ => {}
            }
        }
        if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                other => return Err(format!("expected `,` after variant, found `{other}`")),
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

/// Parses the derive input item into an [`Item`].
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attr(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("expected `struct` or `enum`, found `{kind}`"));
    }
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected item name, found `{other}`")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic item `{name}` is not supported"));
    }
    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => return Err(format!("`{name}` must have a braced body with named fields")),
    };
    if kind == "struct" {
        Ok(Item::Struct { name, fields: parse_named_fields(body)? })
    } else {
        Ok(Item::Enum { name, variants: parse_variants(body)? })
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        Some(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::field(v, {f:?})?")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => return ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|f| (&v.name, f)))
                .map(|(vname, fields)| {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(inner, {f:?})?"))
                        .collect();
                    format!(
                        "{vname:?} => return ::std::result::Result::Ok(\
                         {name}::{vname} {{ {} }}),",
                        inits.join(", ")
                    )
                })
                .collect();
            let str_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                         match s {{\n{}\n_ => {{}}\n}}\n\
                     }}",
                    unit_arms.join("\n")
                )
            };
            let obj_block = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some(obj) = v.as_object() {{\n\
                         if obj.len() == 1 {{\n\
                             let (tag, inner) = &obj[0];\n\
                             match tag.as_str() {{\n{}\n_ => {{}}\n}}\n\
                         }}\n\
                     }}",
                    tagged_arms.join("\n")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {str_block}\n\
                         {obj_block}\n\
                         ::std::result::Result::Err(::serde::Error::msg(\
                             concat!(\"unknown variant for enum \", {name:?})))\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Derives the local `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&format!("#[derive(Serialize)]: {msg}")),
    }
}

/// Derives the local `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&format!("#[derive(Deserialize)]: {msg}")),
    }
}
