//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments without network access to a
//! crates registry, so the external dependencies are vendored as small
//! local implementations of exactly the API surface the workspace uses.
//!
//! Provided here: [`rngs::StdRng`] (a deterministic xoshiro256++ PRNG
//! seeded via splitmix64), the [`Rng`]/[`SeedableRng`]/[`RngCore`]
//! traits with `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism contract: for a fixed seed every method produces the
//! same sequence on every platform; nothing reads OS entropy.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Element types uniformly samplable from a range. The single blanket
/// `SampleRange` impl per range shape keeps type inference identical
/// to upstream rand (`a - rng.gen_range(1.0..2.0)` infers `f32` from
/// `a`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * unit
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// A type producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (0.0f32..1.0).sample_from(rng)
    }
}

impl Standard for f64 {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (0.0f64..1.0).sample_from(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_from(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for the real
    /// `StdRng`. The stream differs from upstream `rand`, which is fine
    /// here: the workspace's determinism contract is seed → identical
    /// stream on every build of *this* codebase, not cross-crate
    /// compatibility.
    #[derive(Debug, Clone, PartialEq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The full 256-bit generator state. Together with
        /// [`StdRng::from_state`] this makes the stream *resumable*:
        /// persisting the state mid-stream and restoring it later
        /// continues the exact same sequence — the primitive behind
        /// crash-safe training checkpoints, whose shuffle order must
        /// replay bit-identically across a kill/resume boundary.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`].
        ///
        /// # Panics
        /// Panics on the all-zero state, which is not reachable from
        /// any seed and would be a fixed point of xoshiro256++.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0, 0, 0, 0], "all-zero xoshiro256++ state is invalid");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(5..9);
            assert!((5..9).contains(&v));
            let w = r.gen_range(6..=9);
            assert!((6..=9).contains(&w));
            let f = r.gen_range(-0.25f32..0.75);
            assert!((-0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut r = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 hit rate {hits}/10000");
    }

    #[test]
    fn state_roundtrip_resumes_the_exact_stream() {
        let mut a = StdRng::seed_from_u64(11);
        // burn an arbitrary prefix, snapshot mid-stream
        for _ in 0..37 {
            a.gen::<u64>();
        }
        let state = a.state();
        let tail: Vec<u64> = (0..64).map(|_| a.gen::<u64>()).collect();
        let mut b = StdRng::from_state(state);
        let resumed: Vec<u64> = (0..64).map(|_| b.gen::<u64>()).collect();
        assert_eq!(tail, resumed, "restored state must continue the identical stream");
        // shuffles (the trainer's use) resume identically too
        let mut v1: Vec<usize> = (0..20).collect();
        let mut v2 = v1.clone();
        let mut c = StdRng::from_state(a.state());
        v1.shuffle(&mut a);
        v2.shuffle(&mut c);
        assert_eq!(v1, v2);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_state_rejected() {
        let _ = StdRng::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
