//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! and the `criterion_group!`/`criterion_main!` macros with timing
//! that is deliberately lightweight: each benchmark is warmed up
//! briefly, then timed in batches until the configured measurement
//! time elapses, and the mean ns/iteration is printed. There is no
//! statistical analysis, HTML report, or comparison to saved
//! baselines — results go to stdout for eyeballing and for the
//! workspace's own JSON emitters.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `"<name>/<parameter>"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring batches until
    /// the measurement budget is spent.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget elapses at least once.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        // Measurement.
        let start = Instant::now();
        let mut iters: u64 = 0;
        let min_iters = warm_iters.max(1);
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement && iters >= min_iters.min(10) {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one(label: &str, warm_up: Duration, measurement: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { warm_up, measurement, mean_ns: f64::NAN };
    f(&mut b);
    if b.mean_ns.is_nan() {
        println!("bench {label}: no measurement (Bencher::iter never called)");
    } else if b.mean_ns >= 1.0e6 {
        println!("bench {label}: {:.3} ms/iter", b.mean_ns / 1.0e6);
    } else if b.mean_ns >= 1.0e3 {
        println!("bench {label}: {:.3} µs/iter", b.mean_ns / 1.0e3);
    } else {
        println!("bench {label}: {:.1} ns/iter", b.mean_ns);
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by
    /// measurement time alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.warm_up, self.measurement, |b| f(b, input));
        self
    }

    /// Runs an unparameterized benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.warm_up, self.measurement, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warm_up: Duration::from_millis(300), measurement: Duration::from_millis(800) }
    }
}

impl Criterion {
    /// Sets the warm-up budget (builder form).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget (builder form).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; this harness is time-budgeted,
    /// so the sample count is ignored.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Starts a configuration group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.warm_up, self.measurement, f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
