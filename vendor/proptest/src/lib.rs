//! Offline vendored subset of the `proptest` API.
//!
//! Implements exactly the surface this workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_shuffle`, range and `Just` strategies, tuple composition,
//! `prop::collection::vec`, `any::<bool>()`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros with
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! assertion message and the case number) and generation is seeded
//! deterministically per test name, so failures reproduce exactly.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies by the runner.
    pub type TestRng = StdRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent
        /// strategy.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Uniformly permutes generated `Vec`s.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_shuffle`].
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.inner.generate(rng);
            v.shuffle(rng);
            v
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between same-typed strategies
    /// (see `prop_oneof!`).
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Builds a union over `options`; panics if empty.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+),)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
    }

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait ArbitraryValue: Sized {
        /// Draws one uniform value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl ArbitraryValue for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.gen_range(0..=u8::MAX)
        }
    }

    impl ArbitraryValue for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.gen::<u32>()
        }
    }

    impl ArbitraryValue for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()`, ...).
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical full-domain strategy for `T`.
    pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
        AnyStrategy { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait IntoVecLen {
        /// Draws a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoVecLen for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoVecLen for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoVecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and
    /// whose length comes from `len`.
    pub fn vec<S: Strategy, L: IntoVecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Test-case orchestration used by the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property: carries the assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Builds a failure with `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-test seed: FNV-1a over the test name mixed
    /// with a fixed offset so each test sees an independent stream.
    pub fn rng_for_test(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Runs each named test body against many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident
        ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(
                            &($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Uniform choice between same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
        Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs((n, v) in (2usize..9).prop_flat_map(|n|
            (Just(n), prop::collection::vec(-1.0f32..1.0, n)))) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn shuffles_are_permutations(p in (3usize..10).prop_flat_map(permutation)) {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..p.len()).collect::<Vec<_>>());
        }

        #[test]
        fn oneof_and_any(sign in prop_oneof![Just(1i32), Just(-1)], b in any::<bool>()) {
            prop_assert!(sign == 1 || sign == -1);
            let _ = b;
        }
    }

    #[test]
    fn failures_panic_with_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0usize..4) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
