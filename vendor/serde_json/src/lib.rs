//! Offline vendored subset of the `serde_json` API: `to_string`,
//! `to_string_pretty`, `from_str` and the `Result`/`Error` aliases,
//! layered over the local `serde` [`Value`] data model.
//!
//! The emitted JSON is deterministic: object keys keep declaration
//! order, floats print via Rust's shortest round-trip `Display`, and
//! `u64` values print as integers (no precision loss through `f64`).

pub use serde::Error;
use serde::{Deserialize, Number, Serialize, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a human-readable, 2-space-indented JSON
/// string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_value(&value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F32(v) => write_float(out, v as f64, v.is_finite()),
        Number::F64(v) => write_float(out, v, v.is_finite()),
    }
}

fn write_float(out: &mut String, v: f64, finite: bool) {
    if finite {
        // Shortest decimal form that round-trips; "2" not "2.0", which
        // the parser reads back as an integer — the typed Deserialize
        // impls convert as needed.
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Infinity literal; mirror the common lossy
        // convention rather than failing mid-write.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => {
                Err(Error::msg(format!("unexpected `{}` at byte {}", other as char, self.pos)))
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| Error::msg("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid unicode escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let num = if is_float {
            text.parse::<f64>().map(Number::F64).map_err(|_| bad_number(text))?
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer.
            stripped
                .parse::<i64>()
                .map(|v| Number::I(-v))
                .or_else(|_| text.parse::<f64>().map(Number::F64))
                .map_err(|_| bad_number(text))?
        } else {
            text.parse::<u64>()
                .map(Number::U)
                .or_else(|_| text.parse::<f64>().map(Number::F64))
                .map_err(|_| bad_number(text))?
        };
        Ok(Value::Num(num))
    }
}

fn bad_number(text: &str) -> Error {
    Error::msg(format!("invalid number `{text}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<f32>("1.25").unwrap(), 1.25);
        assert_eq!(from_str::<i64>("-12").unwrap(), -12);
        let s = "a \"quoted\" \\ line\nwith\ttabs and unicode: ☃";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn f32_values_round_trip_exactly() {
        for &v in &[0.1f32, -3.4e-12, 7.0, f32::MIN_POSITIVE, 1.0 / 3.0] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f32>(&json).unwrap(), v, "value {v} via {json}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1.0f32, 2.5], vec![], vec![-0.25]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&json).unwrap(), v);
        let opt: Option<Vec<u32>> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<Vec<u32>>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, u32)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_and_escapes_parse() {
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert_eq!(from_str::<String>(r#""é\/""#).unwrap(), "é/");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
