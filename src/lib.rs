//! Umbrella crate for the M²G4RTP reproduction workspace.
//!
//! Hosts the cross-crate integration tests (`tests/`) and the runnable
//! examples (`examples/`); re-exports the member crates for convenience.

pub use m2g4rtp;
pub use rtp_baselines;
pub use rtp_eval;
pub use rtp_graph;
pub use rtp_metrics;
pub use rtp_sim;
pub use rtp_tensor;
