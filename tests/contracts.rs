//! Contract tests: the library must fail loudly and descriptively on
//! misuse, never silently produce garbage.

use m2g4rtp::{M2G4Rtp, ModelConfig};
use rtp_graph::{GraphBuilder, GraphConfig};
use rtp_sim::{DatasetBuilder, DatasetConfig, Point, RtpQuery, Weather};

fn tiny() -> rtp_sim::Dataset {
    DatasetBuilder::new(DatasetConfig::tiny(61)).build()
}

#[test]
#[should_panic(expected = "no pipeline attached")]
fn predicting_without_training_panics() {
    let d = tiny();
    let model = M2G4Rtp::new(ModelConfig::for_dataset(&d), 1);
    let s = &d.test[0];
    // build_graph requires the fitted pipeline
    let _ = model.build_graph(&d.city, &d.couriers[s.query.courier_id], &s.query);
}

#[test]
#[should_panic(expected = "empty query")]
fn graph_builder_rejects_empty_queries() {
    let d = tiny();
    let empty = RtpQuery {
        courier_id: 0,
        time: 100.0,
        courier_pos: Point { x: 0.0, y: 0.0 },
        orders: vec![],
        weather: Weather::Sunny,
        weekday: 0,
    };
    GraphBuilder::new(GraphConfig::default()).build(&empty, &d.city, &d.couriers[0]);
}

#[test]
#[should_panic(expected = "needs at least one sample")]
fn gbdt_rejects_empty_training_sets() {
    rtp_baselines::Gbdt::fit(&[], &[], &rtp_baselines::GbdtConfig::default());
}

#[test]
#[should_panic(expected = "cannot fit a scaler on zero graphs")]
fn scaler_rejects_empty_fit() {
    rtp_graph::FeatureScaler::fit_graphs(&[]);
}

#[test]
#[should_panic(expected = "route length mismatch")]
fn metrics_reject_mismatched_routes() {
    rtp_metrics::lsd(&[0, 1, 2], &[0, 1]);
}

#[test]
#[should_panic(expected = "duplicate item")]
fn metrics_reject_duplicate_routes() {
    rtp_metrics::ranks_of(&[0, 0, 1]);
}

#[test]
fn model_config_validation_catches_all_head_divisibility_issues() {
    let d = tiny();
    for (dl, da, heads, ok) in [(48, 48, 4, true), (48, 48, 5, false), (30, 48, 4, false)] {
        let mut c = ModelConfig::for_dataset(&d);
        c.d_loc = dl;
        c.d_aoi = da;
        c.n_heads = heads;
        let r = std::panic::catch_unwind(|| c.validate());
        assert_eq!(r.is_ok(), ok, "d_loc={dl} d_aoi={da} heads={heads}");
    }
}
