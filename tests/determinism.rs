//! Reproducibility guarantees: everything in the pipeline is
//! deterministic in its seeds — datasets, graphs, initialisation,
//! training and inference.

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_graph::{FeatureScaler, GraphBuilder, GraphConfig};
use rtp_sim::{DatasetBuilder, DatasetConfig};

#[test]
fn datasets_are_bit_identical_across_builds() {
    let a = DatasetBuilder::new(DatasetConfig::tiny(55)).build();
    let b = DatasetBuilder::new(DatasetConfig::tiny(55)).build();
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
}

#[test]
fn different_seeds_give_different_datasets() {
    let a = DatasetBuilder::new(DatasetConfig::tiny(1)).build();
    let b = DatasetBuilder::new(DatasetConfig::tiny(2)).build();
    assert_ne!(a.to_json().unwrap(), b.to_json().unwrap());
}

#[test]
fn graph_construction_is_deterministic() {
    let d = DatasetBuilder::new(DatasetConfig::tiny(56)).build();
    let builder = GraphBuilder::new(GraphConfig::default());
    let s = &d.train[0];
    let c = &d.couriers[s.query.courier_id];
    let g1 = builder.build(&s.query, &d.city, c);
    let g2 = builder.build(&s.query, &d.city, c);
    assert_eq!(g1.locations.cont, g2.locations.cont);
    assert_eq!(g1.locations.adj, g2.locations.adj);
    assert_eq!(g1.aois.edge, g2.aois.edge);
}

#[test]
fn training_and_inference_are_deterministic_in_seeds() {
    let run = || {
        let d = DatasetBuilder::new(DatasetConfig::tiny(57)).build();
        let mut cfg = ModelConfig::for_dataset(&d);
        cfg.d_loc = 16;
        cfg.d_aoi = 16;
        cfg.n_heads = 2;
        cfg.n_layers = 1;
        let mut model = M2G4Rtp::new(cfg, 9);
        Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::quick() }).fit(&mut model, &d);
        let p = model.predict_sample(&d, &d.test[0]);
        (p.route, p.times)
    };
    let (r1, t1) = run();
    let (r2, t2) = run();
    assert_eq!(r1, r2, "routes must be identical across identical runs");
    assert_eq!(t1, t2, "times must be identical across identical runs");
}

/// The tentpole guarantee of the data-parallel trainer: per-sample
/// gradient shards are reduced in sample-index order, so the thread
/// count must not change a single bit of the result — same final
/// losses, same serialized weights.
#[test]
fn training_is_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        let d = DatasetBuilder::new(DatasetConfig::tiny(59)).build();
        let mut cfg = ModelConfig::for_dataset(&d);
        cfg.d_loc = 16;
        cfg.d_aoi = 16;
        cfg.n_heads = 2;
        cfg.n_layers = 1;
        let mut model = M2G4Rtp::new(cfg, 11);
        let train_cfg = TrainConfig { epochs: 2, threads, ..TrainConfig::quick() };
        let report = Trainer::new(train_cfg).fit(&mut model, &d);
        let losses: Vec<u32> = report.history.iter().map(|e| e.train_loss.to_bits()).collect();
        let saved = serde_json::to_string(&model.to_saved()).expect("serialize model");
        (losses, saved)
    };
    let (loss1, saved1) = run(1);
    for threads in [2, 4] {
        let (loss_n, saved_n) = run(threads);
        assert_eq!(loss1, loss_n, "per-epoch losses must be bit-identical at {threads} threads");
        assert_eq!(saved1, saved_n, "saved model must be byte-identical at {threads} threads");
    }
}

#[test]
fn scaler_is_deterministic() {
    let d = DatasetBuilder::new(DatasetConfig::tiny(58)).build();
    let builder = GraphBuilder::new(GraphConfig::default());
    let s1 = FeatureScaler::fit(&d, &builder);
    let s2 = FeatureScaler::fit(&d, &builder);
    let sample = &d.train[0];
    let c = &d.couriers[sample.query.courier_id];
    let mut g1 = builder.build(&sample.query, &d.city, c);
    let mut g2 = builder.build(&sample.query, &d.city, c);
    s1.apply(&mut g1);
    s2.apply(&mut g2);
    assert_eq!(g1.locations.cont, g2.locations.cont);
}
