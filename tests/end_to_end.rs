//! Cross-crate integration: dataset generation → graph construction →
//! model training → joint prediction → metric evaluation → service.

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_baselines::{Baseline, DistanceGreedy};
use rtp_eval::service::RtpService;
use rtp_metrics::{krc, RouteMetricAccumulator, TimeMetricAccumulator};
use rtp_sim::{DatasetBuilder, DatasetConfig};

fn quick_trained_model(seed: u64) -> (rtp_sim::Dataset, M2G4Rtp) {
    let dataset = DatasetBuilder::new(DatasetConfig::quick(seed)).build();
    let mut cfg = ModelConfig::for_dataset(&dataset);
    cfg.d_loc = 16;
    cfg.d_aoi = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    let mut model = M2G4Rtp::new(cfg, seed);
    Trainer::new(TrainConfig { epochs: 8, ..TrainConfig::quick() }).fit(&mut model, &dataset);
    (dataset, model)
}

#[test]
fn trained_model_is_far_above_chance_and_near_the_geometric_heuristic() {
    // CI-scale sanity: the down-sized test model (d=16, 1 layer, 8
    // epochs, ~500 training samples) must be far above chance (random
    // permutations have expected KRC 0) and competitive with the
    // geometric heuristic. Beating Distance-Greedy *outright* requires
    // learning courier habits, which needs the full-scale run — that is
    // exactly what `rtp-eval`'s Table III harness demonstrates
    // (M2G4RTP KRC 0.57 vs Distance-Greedy 0.35; see EXPERIMENTS.md).
    let (dataset, model) = quick_trained_model(31);
    let mut model_krc = 0.0;
    let mut greedy_krc = 0.0;
    for s in &dataset.test {
        let p = model.predict_sample(&dataset, s);
        model_krc += krc(&p.route, &s.truth.route);
        let g = DistanceGreedy.predict(&dataset, s);
        greedy_krc += krc(&g.route, &s.truth.route);
    }
    let n = dataset.test.len() as f64;
    let (model_krc, greedy_krc) = (model_krc / n, greedy_krc / n);
    assert!(model_krc > 0.25, "trained KRC {model_krc:.3} not clearly above chance");
    assert!(
        model_krc > greedy_krc - 0.2,
        "trained KRC {model_krc:.3} unreasonably far below the geometric heuristic ({greedy_krc:.3})"
    );
}

#[test]
fn metric_accumulators_work_on_real_predictions() {
    let (dataset, model) = quick_trained_model(32);
    let mut racc = RouteMetricAccumulator::new();
    let mut tacc = TimeMetricAccumulator::new();
    for s in dataset.test.iter().take(30) {
        let p = model.predict_sample(&dataset, s);
        racc.add(&p.route, &s.truth.route);
        tacc.add(&p.times, &s.truth.arrival, s.query.num_locations());
    }
    let all = racc.finish(rtp_metrics::Bucket::All).expect("samples were added");
    assert!(all.hr3 >= 0.0 && all.hr3 <= 100.0);
    assert!(all.krc >= -1.0 && all.krc <= 1.0);
    assert!(all.lsd >= 0.0);
    let t = tacc.finish(rtp_metrics::Bucket::All).expect("locations were added");
    assert!(t.rmse >= t.mae, "RMSE >= MAE always");
    assert!(t.acc20 >= 0.0 && t.acc20 <= 100.0);
}

#[test]
fn service_layer_round_trips_a_request() {
    let (dataset, model) = quick_trained_model(33);
    let service = RtpService::new(model);
    let s = &dataset.test[0];
    let courier = &dataset.couriers[s.query.courier_id];
    let resp = service.handle(&dataset.city, courier, &s.query).expect("aligned prediction");
    assert_eq!(resp.sorted_orders.len(), s.query.num_locations());
    assert_eq!(resp.aoi_sequence.len(), s.query.distinct_aois().len());
    assert!(resp.etas.iter().all(|e| e.eta_minutes.is_finite()));
}

#[test]
fn predictions_respect_aoi_first_visit_consistency() {
    // The AOI-level route must equal the first-visit order induced by
    // the location-level route when both come from the same prediction
    // in a NoAoi-derived setting; for the full model they are separate
    // decoders, so we only check structural validity here.
    let (dataset, model) = quick_trained_model(34);
    for s in dataset.test.iter().take(20) {
        let p = model.predict_sample(&dataset, s);
        let m = s.query.distinct_aois().len();
        let mut seen = vec![false; m];
        for &a in &p.aoi_route {
            assert!(a < m, "AOI index out of range");
            assert!(!seen[a], "AOI repeated in AOI route");
            seen[a] = true;
        }
        assert!(seen.iter().all(|&x| x), "AOI route must cover all AOIs");
    }
}
