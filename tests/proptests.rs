//! Property-based tests on the workspace's core invariants: metric
//! bounds, tensor-op algebra, simulator permutation/monotonicity
//! guarantees and decoder output validity.

use proptest::prelude::*;
use rtp_metrics::{acc_at, hr_at_k, krc, lsd, mae, ranks_of, rmse};
use rtp_tensor::{ParamStore, Tape};

/// Strategy: a random permutation of 0..n.
fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn krc_is_bounded_and_symmetric_under_identity((a, b) in (2usize..12).prop_flat_map(|n| (permutation(n), permutation(n)))) {
        let v = krc(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert_eq!(krc(&a, &a), 1.0);
        // KRC is symmetric in its arguments
        prop_assert!((krc(&a, &b) - krc(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn reversing_a_route_negates_krc(a in (2usize..12).prop_flat_map(permutation)) {
        let mut rev = a.clone();
        rev.reverse();
        prop_assert!((krc(&rev, &a) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn hr_and_lsd_bounds((a, b) in (4usize..12).prop_flat_map(|n| (permutation(n), permutation(n)))) {
        let h = hr_at_k(&a, &b, 3);
        prop_assert!((0.0..=1.0).contains(&h));
        let l = lsd(&a, &b);
        let n = a.len() as f64;
        prop_assert!(l >= 0.0);
        // max LSD is bounded by (n-1)^2
        prop_assert!(l <= (n - 1.0) * (n - 1.0));
        prop_assert_eq!(lsd(&a, &a), 0.0);
    }

    #[test]
    fn ranks_of_inverts_routes(a in (1usize..16).prop_flat_map(permutation)) {
        let ranks = ranks_of(&a);
        for (pos, &item) in a.iter().enumerate() {
            prop_assert_eq!(ranks[item], pos);
        }
    }

    #[test]
    fn rmse_dominates_mae(pred in prop::collection::vec(-200.0f32..200.0, 1..40),
                          err in prop::collection::vec(-50.0f32..50.0, 1..40)) {
        let n = pred.len().min(err.len());
        let p = &pred[..n];
        let y: Vec<f32> = p.iter().zip(&err[..n]).map(|(a, e)| a + e).collect();
        prop_assert!(rmse(p, &y) + 1e-6 >= mae(p, &y));
        prop_assert!((0.0..=100.0).contains(&acc_at(p, &y, 20.0)));
    }

    #[test]
    fn tensor_matmul_matches_reference(a in prop::collection::vec(-2.0f32..2.0, 6),
                                       b in prop::collection::vec(-2.0f32..2.0, 6)) {
        let mut t = Tape::new();
        let ta = t.constant(2, 3, a.clone());
        let tb = t.constant(3, 2, b.clone());
        let tc = t.matmul(ta, tb);
        for i in 0..2 {
            for j in 0..2 {
                let expect: f32 = (0..3).map(|k| a[i * 3 + k] * b[k * 2 + j]).sum();
                prop_assert!((t.data(tc)[i * 2 + j] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn softmax_rows_are_distributions(vals in prop::collection::vec(-10.0f32..10.0, 12),
                                      mask in prop::collection::vec(any::<bool>(), 12)) {
        let mut t = Tape::new();
        let x = t.constant(3, 4, vals);
        let s = t.masked_softmax_rows(x, &mask);
        let d = t.data(s);
        for i in 0..3 {
            let row = &d[i * 4..(i + 1) * 4];
            let row_mask = &mask[i * 4..(i + 1) * 4];
            let sum: f32 = row.iter().sum();
            if row_mask.iter().any(|&m| m) {
                prop_assert!((sum - 1.0).abs() < 1e-4, "row sums to {sum}");
            } else {
                prop_assert_eq!(sum, 0.0);
            }
            for (v, &m) in row.iter().zip(row_mask) {
                prop_assert!(*v >= 0.0);
                if !m {
                    prop_assert_eq!(*v, 0.0);
                }
            }
        }
    }

    #[test]
    fn gradients_are_finite_for_random_expressions(
        x in prop::collection::vec(-3.0f32..3.0, 8),
        w in prop::collection::vec(-1.5f32..1.5, 16),
    ) {
        let mut store = ParamStore::new(1);
        let wp = store.add_param("w", 4, 4, w);
        let mut t = Tape::new();
        let xv = t.constant(2, 4, x);
        let wv = t.param(&store, wp);
        let h = t.matmul(xv, wv);
        let a = t.tanh(h);
        let b = t.sigmoid(h);
        let c = t.mul(a, b);
        let n = t.layer_norm_rows(c, 1e-5);
        let loss = t.mean_all(n);
        t.backward(loss, &mut store);
        prop_assert!(store.grad(wp).iter().all(|g| g.is_finite()));
    }

    #[test]
    fn simulator_truth_is_always_a_valid_label(seed in 0u64..500) {
        let d = rtp_sim::DatasetBuilder::new(rtp_sim::DatasetConfig::tiny(seed)).build();
        if let Some(s) = d.train.first() {
            let n = s.query.num_locations();
            let mut seen = vec![false; n];
            for &i in &s.truth.route {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            prop_assert!(seen.iter().all(|&x| x));
            // arrival times increase along the route
            for w in s.truth.route.windows(2) {
                prop_assert!(s.truth.arrival[w[1]] > s.truth.arrival[w[0]]);
            }
            // AOI arrival = first member location arrival
            let order_aoi = s.query.order_aoi_indices();
            for (k, &t_aoi) in s.truth.aoi_arrival.iter().enumerate() {
                let first = s.truth.route.iter().find(|&&i| order_aoi[i] == k).unwrap();
                prop_assert_eq!(t_aoi, s.truth.arrival[*first]);
            }
        }
    }
}
