//! Integration of the baseline zoo with the shared evaluation path:
//! every method produces comparable, metric-ready predictions, and the
//! relative ordering of the training-free methods is sane.

use rtp_baselines::{
    Baseline, DistanceGreedy, Gbdt, GbdtConfig, OSquare, OSquareConfig, OrToolsLike, TimeGreedy,
};
use rtp_metrics::{krc, mae, RouteMetricAccumulator};
use rtp_sim::{DatasetBuilder, DatasetConfig};

#[test]
fn heuristics_and_osquare_are_mutually_comparable() {
    let d = DatasetBuilder::new(DatasetConfig::quick(41)).build();
    let osquare = OSquare::fit(&d, &OSquareConfig::default());
    let methods: Vec<(&str, Box<dyn Baseline>)> = vec![
        ("dg", Box::new(DistanceGreedy)),
        ("tg", Box::new(TimeGreedy)),
        ("or", Box::new(OrToolsLike::default())),
        ("os", Box::new(osquare)),
    ];
    let mut accs: Vec<RouteMetricAccumulator> =
        methods.iter().map(|_| RouteMetricAccumulator::new()).collect();
    for s in d.test.iter().take(60) {
        for ((_, m), acc) in methods.iter().zip(&mut accs) {
            let p = m.predict(&d, s);
            acc.add(&p.route, &s.truth.route);
        }
    }
    let all: Vec<f64> = accs
        .iter()
        .map(|a| a.finish(rtp_metrics::Bucket::All).expect("samples added").krc)
        .collect();
    // Learned OSquare must beat deadline ordering (which ignores both
    // geometry and habit) on this habit+distance-driven world.
    let (dg, tg, _or, os) = (all[0], all[1], all[2], all[3]);
    assert!(os > tg, "OSquare ({os:.3}) must beat Time-Greedy ({tg:.3})");
    assert!(dg > tg, "Distance-Greedy ({dg:.3}) must beat Time-Greedy ({tg:.3})");
}

#[test]
fn osquare_time_model_beats_naive_fixed_speed() {
    let d = DatasetBuilder::new(DatasetConfig::quick(42)).build();
    let osquare = OSquare::fit(&d, &OSquareConfig::default());
    let mut os_mae = 0.0;
    let mut dg_mae = 0.0;
    let mut n = 0usize;
    for s in d.test.iter().take(60) {
        let po = osquare.predict(&d, s);
        let pd = DistanceGreedy.predict(&d, s);
        os_mae += mae(&po.times, &s.truth.arrival) * s.truth.arrival.len() as f64;
        dg_mae += mae(&pd.times, &s.truth.arrival) * s.truth.arrival.len() as f64;
        n += s.truth.arrival.len();
    }
    let (os_mae, dg_mae) = (os_mae / n as f64, dg_mae / n as f64);
    assert!(
        os_mae < dg_mae,
        "learned time model ({os_mae:.1} min) must beat fixed-speed ({dg_mae:.1} min) — \
         the fixed-speed model ignores service times entirely"
    );
}

#[test]
fn gbdt_is_exposed_and_composable() {
    // The GBDT substrate is a public API in its own right.
    let xs: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32 / 50.0 - 1.0]).collect();
    let ys: Vec<f32> = xs.iter().map(|x| if x[0] > 0.0 { 2.0 } else { -2.0 }).collect();
    let g = Gbdt::fit(&xs, &ys, &GbdtConfig { n_trees: 30, ..Default::default() });
    assert!(g.predict(&[0.8]) > 1.5);
    assert!(g.predict(&[-0.8]) < -1.5);
    assert_eq!(g.len(), 30);
}

#[test]
fn route_metrics_agree_with_direct_computation() {
    // The accumulator's all-bucket KRC must equal the hand-computed
    // average over the same predictions.
    let d = DatasetBuilder::new(DatasetConfig::tiny(43)).build();
    let mut acc = RouteMetricAccumulator::new();
    let mut direct = 0.0;
    let take = d.test.len().min(20);
    for s in d.test.iter().take(take) {
        let p = DistanceGreedy.predict(&d, s);
        acc.add(&p.route, &s.truth.route);
        direct += krc(&p.route, &s.truth.route);
    }
    let got = acc.finish(rtp_metrics::Bucket::All).expect("non-empty").krc;
    assert!((got - direct / take as f64).abs() < 1e-9);
}
